"""The combined group-view database.

The paper's concluding remarks: "The two databases have been
implemented as a single Arjuna object, referred to as the group view
database."  This class hosts an
:class:`~repro.naming.object_server_db.ObjectServerDatabase` and an
:class:`~repro.naming.object_state_db.ObjectStateDatabase` behind one
service interface and one two-phase-commit participant.  Entries remain
independently concurrency-controlled (the lock resources are keyed
``("sv", uid)`` and ``("st", uid)``).

Action ids arrive as path tuples (the RPC wire form); every method is
safe to expose as an RPC service.  The object is itself persistent:
:meth:`save_state`/:meth:`restore_state` serialise the full mapping
through the standard state buffers.

Beyond the paper's surface, the database serves the *leased read
plane* and the batched replica-maintenance protocol on the sync
service: :meth:`read_entry_versioned` (a committed snapshot plus write
versions under probe locks that never span the wire, no 2PC
enlistment) and the coalesced :meth:`entry_versions_many` /
:meth:`read_entry_versioned_many` round trips that anti-entropy,
resync, and read-repair batch their per-entry traffic into.
"""

from __future__ import annotations

from typing import Any

from repro.actions.action import ActionId, AtomicAction
from repro.actions.errors import LockRefused, PromotionRefused
from repro.actions.locks import LockMode
from repro.naming.db_base import ActionPath, _is_prefix
from repro.naming.errors import UnknownObject
from repro.naming.object_server_db import ObjectServerDatabase, ServerEntrySnapshot
from repro.naming.object_state_db import ObjectStateDatabase
from repro.sim.metrics import MetricsRegistry
from repro.sim.tracing import NULL_TRACER, Tracer
from repro.storage.states import InputObjectState, OutputObjectState
from repro.storage.uid import Uid

SERVICE_NAME = "group_view_db"

# The replica-internal side door: shard hosts serve the same database
# under this second name for resync, anti-entropy, arc migration, and
# read-repair.  Recovery gating (pulling a stale host out of the
# *client* serving path until it has caught up) unregisters only
# SERVICE_NAME; the sync service stays up whenever the node is up, so
# any set of simultaneously-recovering replicas can still copy from
# each other -- gated peers deadlocking an arc's resync is otherwise a
# real failure mode under stochastic churn.  Every install flowing over
# this plane is version-gated, so reading a still-stale gated peer can
# never move a replica backwards.
SYNC_SERVICE_NAME = "group_view_db_sync"


class GroupViewDatabase:
    """Single object combining the server and state databases."""

    TYPE_NAME = "repro.naming.GroupViewDatabase"

    # Opt in to the RPC layer stamping the calling host before each
    # dispatch (see RpcAgent._execute): commits bump the per-entry
    # vector clock under the *writer's* identity, and every replica of
    # an entry sees the same coordinator host for the same action, so
    # identical commit histories always produce identical clocks.
    accepts_rpc_caller = True

    def __init__(self, uid: Uid | None = None,
                 use_exclude_write_lock: bool = True,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.uid = uid or Uid("system", 0)
        shared_metrics = metrics or MetricsRegistry()
        shared_tracer = tracer or NULL_TRACER
        self.server_db = ObjectServerDatabase(metrics=shared_metrics,
                                              tracer=shared_tracer)
        self.state_db = ObjectStateDatabase(
            use_exclude_write_lock=use_exclude_write_lock,
            metrics=shared_metrics, tracer=shared_tracer)
        self.metrics = shared_metrics
        # The coherence plane's commit hook (a CoherenceHost, attached
        # by the shard-host boot path).  Mutators record which uids an
        # action touched; commit hands the committed ones over so the
        # owner can push invalidations to registered lessees.
        self.coherence: Any = None
        self._touched: list[tuple[tuple[int, ...], str]] = []
        # Writer host of the RPC currently being dispatched ("" for
        # local calls, e.g. boot-time restore commits -- identical on
        # every replica, so clocks still agree).
        self.rpc_caller = ""
        # Per-entry vector clocks: uid_text -> {writer_host: commits}.
        # Volatile alongside locks and undo logs -- a recovered replica
        # restarts at the empty clock, which is dominated by every
        # peer's, so repair always pulls toward the survivors.
        self._vclocks: dict[str, dict[str, int]] = {}

    # -- administrative -------------------------------------------------------

    def define_object(self, action_path: ActionPath, uid_text: str,
                      sv_hosts: list[str], st_hosts: list[str]) -> None:
        """Register a new persistent object's Sv and St sets."""
        uid = Uid.parse(uid_text)
        self.server_db.define(action_path, uid, sv_hosts)
        self.state_db.define(action_path, uid, st_hosts)
        self._touch(action_path, uid_text)

    def _touch(self, action_path: ActionPath, uid_text: str) -> None:
        """Record a provisional mutation for the commit-time push hook.

        The list is bounded by the in-flight actions: every entry is
        popped by the prefix match in :meth:`commit`/:meth:`abort`, and
        :meth:`reset_volatile` (crash) drops the lot with the undo
        logs they mirror.
        """
        self._touched.append((tuple(action_path), uid_text))

    def _resolve_touched(self, action_path: ActionPath,
                         committed: bool) -> None:
        """Pop this action's touched uids; notify coherence on commit."""
        if not self._touched:
            return
        prefix = tuple(action_path)
        kept: list[tuple[tuple[int, ...], str]] = []
        resolved: list[str] = []
        for path, uid_text in self._touched:
            if _is_prefix(prefix, path):
                resolved.append(uid_text)
            else:
                kept.append((path, uid_text))
        self._touched = kept
        if committed and resolved:
            seen: set[str] = set()
            uids = [u for u in resolved if not (u in seen or seen.add(u))]
            writer = self.rpc_caller or "local"
            for uid_text in uids:
                clock = self._vclocks.setdefault(uid_text, {})
                clock[writer] = clock.get(writer, 0) + 1
            if self.coherence is not None:
                self.coherence.note_committed(uids)

    def knows(self, uid_text: str) -> bool:
        return self.server_db.knows(Uid.parse(uid_text))

    # -- object server database operations --------------------------------------

    def get_server(self, action_path: ActionPath, uid_text: str) -> list[str]:
        return self.server_db.get_server(action_path, Uid.parse(uid_text))

    def get_server_with_uses(self, action_path: ActionPath, uid_text: str,
                             for_update: bool = False) -> ServerEntrySnapshot:
        return self.server_db.get_server_with_uses(
            action_path, Uid.parse(uid_text), for_update)

    def insert(self, action_path: ActionPath, uid_text: str, host: str) -> None:
        self.server_db.insert(action_path, Uid.parse(uid_text), host)
        self._touch(action_path, uid_text)

    def remove(self, action_path: ActionPath, uid_text: str, host: str) -> None:
        self.server_db.remove(action_path, Uid.parse(uid_text), host)
        self._touch(action_path, uid_text)

    def increment(self, action_path: ActionPath, client_node: str,
                  uid_text: str, hosts: list[str]) -> None:
        self.server_db.increment(action_path, client_node, Uid.parse(uid_text), hosts)
        self._touch(action_path, uid_text)

    def decrement(self, action_path: ActionPath, client_node: str,
                  uid_text: str, hosts: list[str]) -> None:
        self.server_db.decrement(action_path, client_node, Uid.parse(uid_text), hosts)
        self._touch(action_path, uid_text)

    def is_quiescent(self, uid_text: str) -> bool:
        return self.server_db.is_quiescent(Uid.parse(uid_text))

    # -- object state database operations ----------------------------------------

    def get_view(self, action_path: ActionPath, uid_text: str) -> list[str]:
        return self.state_db.get_view(action_path, Uid.parse(uid_text))

    def exclude(self, action_path: ActionPath,
                exclusions: list[tuple[str, list[str]]]) -> None:
        parsed = [(Uid.parse(uid_text), list(hosts))
                  for uid_text, hosts in exclusions]
        self.state_db.exclude(action_path, parsed)
        for uid_text, _hosts in exclusions:
            self._touch(action_path, uid_text)

    def include(self, action_path: ActionPath, uid_text: str, host: str) -> None:
        self.state_db.include(action_path, Uid.parse(uid_text), host)
        self._touch(action_path, uid_text)

    # -- 2PC participant (spans both halves) ---------------------------------------

    def prepare(self, action_path: ActionPath) -> str:
        votes = (self.server_db.prepare(action_path),
                 self.state_db.prepare(action_path))
        if "abort" in votes:
            return "abort"
        return "ok" if "ok" in votes else "readonly"

    def commit(self, action_path: ActionPath) -> None:
        self.server_db.commit(action_path)
        self.state_db.commit(action_path)
        self._resolve_touched(action_path, committed=True)

    def abort(self, action_path: ActionPath) -> None:
        self.server_db.abort(action_path)
        self.state_db.abort(action_path)
        self._resolve_touched(action_path, committed=False)

    # -- batched 2PC participant ----------------------------------------------
    #
    # Server half of the commit batcher: one RPC carries many actions'
    # phase messages, one outcome tuple comes back per action.  Each
    # item is handled under its own try/except so a single action's
    # refusal (vote "abort", lock conflict, unknown path) never
    # poisons its batchmates -- the ``batch-demux`` invariant.  The
    # coordinator-side demux turns each outcome back into exactly the
    # verdict the unbatched call would have produced, keeping every
    # action's presumed-abort bookkeeping untouched.

    def prepare_many(self, items: list[tuple]) -> list[tuple]:
        outcomes: list[tuple] = []
        for item in items:
            try:
                (action_path,) = item
                outcomes.append(("ok", self.prepare(action_path)))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        return outcomes

    def commit_many(self, items: list[tuple]) -> list[tuple]:
        outcomes: list[tuple] = []
        for item in items:
            try:
                (action_path,) = item
                outcomes.append(("ok", self.commit(action_path)))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        return outcomes

    def abort_many(self, items: list[tuple]) -> list[tuple]:
        outcomes: list[tuple] = []
        for item in items:
            try:
                (action_path,) = item
                outcomes.append(("ok", self.abort(action_path)))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        return outcomes

    # -- liveness probe used by binding/cleanup protocols ---------------------------

    def ping(self) -> str:
        return "pong"

    # -- shard resync support -------------------------------------------------------

    def list_uids(self) -> list[str]:
        """Every UID with an entry in either half (RPC-exposed).

        Lock-free: enumerating keys is safe (an uncommitted ``define``
        may briefly appear, but resync readers take real read locks per
        entry and treat ``UnknownObject`` as "gone again").
        """
        uids = {str(uid) for uid in self.server_db.all_uids()}
        uids.update(str(uid) for uid in self.state_db.all_uids())
        return sorted(uids)

    def entry_versions(self, uid_text: str) -> tuple[int, int]:
        """The (server, state) write versions of one entry (RPC-exposed).

        Resync callers invoke this while already holding the entry's
        read locks (from the snapshot reads of the same action), so the
        lock-free read is consistent.
        """
        uid = Uid.parse(uid_text)
        return (self.server_db.entry_version(uid),
                self.state_db.entry_version(uid))

    def entry_versions_many(self, uid_texts: list[str],
                            ) -> list[tuple[int, int]]:
        """Batched :meth:`entry_versions` (RPC-exposed): ``probe_many``.

        One round trip replaces the per-uid probe storm of anti-entropy
        and resync sweeps.  Versions are plain monotonic counters read
        without locks -- exactly like the single probe, each value is a
        point-in-time lower bound a version-gated install re-checks
        under locks before anything lands.
        """
        return [self.entry_versions(uid_text) for uid_text in uid_texts]

    def entry_clock(self, uid_text: str) -> dict[str, int]:
        """The entry's vector clock (RPC-exposed), ``{writer: commits}``.

        Scalar versions bump identically on every replica of a committed
        action, so two replicas that diverged under a partial partition
        present *equal* versions with different content.  The clock is
        the tie-breaker: identical commit histories produce identical
        clocks, so a clock mismatch at equal scalars *is* divergence.
        """
        return dict(self._vclocks.get(uid_text, {}))

    def entry_clocks_many(self, uid_texts: list[str]) -> list[dict[str, int]]:
        """Batched :meth:`entry_clock` (RPC-exposed): one round trip per
        sweep, same as the scalar ``entry_versions_many``."""
        return [self.entry_clock(uid_text) for uid_text in uid_texts]

    # -- the leased read plane ------------------------------------------------

    def read_entry_versioned(self, uid_text: str) -> Any:
        """One committed entry + write versions, no 2PC enlistment.

        The server half of the leased read plane (RPC-exposed on the
        sync service): both halves are read under a throwaway local
        probe action -- the try-locks are taken and released inside
        this one dispatch, so no lock ever spans the wire, no
        participant is enlisted, and the caller's action is never
        serialized against the entry.  Returns
        ``(sv_hosts, uses, st_hosts, (sv_version, st_version), mode,
        vclock)`` -- ``mode`` is the coherence plane's pull/push verdict
        for the entry (always ``"pull"`` without a coherence host),
        ``vclock`` its per-writer commit clock -- or
        ``"locked"`` when a live action is mid-flight on the entry (the
        caller falls back to the authoritative locking read), or
        ``"unknown"`` when this replica disclaims the uid.
        """
        uid = Uid.parse(uid_text)
        probe = AtomicAction(node="lease-read-probe")
        # The databases key lock owners by bare path (the RPC wire
        # form), so the release must use the same node-less identity.
        # (ignore below: the probe holds no locks until inside the
        # try/finally; building the owner id cannot leak anything.)
        owner = ActionId(probe.id.path)  # repro: ignore[action-leak]
        try:
            snapshot = self.server_db.get_server_with_uses(probe.id.path, uid)
            view = self.state_db.get_view(probe.id.path, uid)
            versions = (self.server_db.entry_version(uid),
                        self.state_db.entry_version(uid))
            mode = ("pull" if self.coherence is None
                    else self.coherence.mode_of(uid_text))
            return (list(snapshot.hosts),
                    {host: dict(counters)
                     for host, counters in snapshot.uses.items()},
                    list(view), versions, mode,
                    dict(self._vclocks.get(uid_text, {})))
        except (LockRefused, PromotionRefused):
            return "locked"
        except UnknownObject:
            return "unknown"
        finally:
            self.server_db.locks.release_all(owner)
            self.state_db.locks.release_all(owner)
            probe.run_local(probe.abort())

    def read_entry_versioned_many(self, uid_texts: list[str]) -> list[Any]:
        """Batched :meth:`read_entry_versioned` (RPC-exposed): ``get_many``.

        Each entry is snapshotted under its own probe locks (per-entry
        consistency, exactly like the single read); the batch only
        coalesces the round trips, so a resync copying a whole arc pays
        one RPC instead of one per entry.
        """
        return [self.read_entry_versioned(uid_text) for uid_text in uid_texts]

    def install_entry(self, uid_text: str, sv_hosts: list[str],
                      uses: dict[str, dict[str, int]],
                      st_hosts: list[str],
                      versions: tuple[int, int],
                      vclock: dict[str, int] | None = None,
                      force: bool = False) -> bool:
        """Install one committed entry from a replica peer's snapshot.

        Each half lands only if the peer's write version is strictly
        ahead of the local one (see the per-db ``install_entry``), so
        resync and anti-entropy can only move a replica forward.
        ``force`` bypasses the scalar gate for vector-clock divergence
        repair.  When the copy lands, ``vclock`` is merged into the
        local clock pointwise (max per writer), so the clock always
        covers the content.  Returns whether anything was installed.
        """
        uid = Uid.parse(uid_text)
        sv_version, st_version = versions
        changed = self.server_db.install_entry(uid, list(sv_hosts), uses,
                                               sv_version, force=force)
        changed |= self.state_db.install_entry(uid, list(st_hosts),
                                               st_version, force=force)
        if changed and vclock:
            clock = self._vclocks.setdefault(uid_text, {})
            for writer, count in vclock.items():
                if count > clock.get(writer, 0):
                    clock[writer] = count
        if changed and self.coherence is not None:
            # A maintenance install (resync, migration, read-repair)
            # moved our committed state forward: registered lessees
            # must hear about it like any committed write.
            self.coherence.note_committed([uid_text])
        return changed

    def guarded_install_entry(self, uid_text: str, sv_hosts: list[str],
                              uses: dict[str, dict[str, int]],
                              st_hosts: list[str],
                              versions: tuple[int, int],
                              vclock: dict[str, int] | None = None,
                              force: bool = False) -> bool | None:
        """Lock-guarded :meth:`install_entry` (RPC-exposed).

        Both halves are try-locked under a fresh probe action before
        the install: a refusal means a live local action is mid-flight
        on the entry (its undo closures must not be clobbered), and the
        caller -- shard resync, the arc-migration pipeline, read-repair
        -- retries later.  Returns ``None`` when locked, otherwise
        whether the (version-gated) install changed anything.
        """
        uid = Uid.parse(uid_text)
        probe = AtomicAction(node="install-probe")
        locked = []
        try:
            for half, key in ((self.server_db, ("sv", uid)),
                              (self.state_db, ("st", uid))):
                half.locks.try_lock(probe.id, key, LockMode.WRITE)
                locked.append(half)
            return self.install_entry(uid_text, sv_hosts, uses, st_hosts,
                                      tuple(versions), vclock=vclock,
                                      force=force)
        except (LockRefused, PromotionRefused):
            return None
        finally:
            for half in locked:
                half.locks.release_all(probe.id)
            probe.run_local(probe.abort())

    def forget_entry(self, uid_text: str) -> bool | None:
        """Lock-guarded removal of an entry this shard no longer owns.

        The online-resharding garbage-collection step: after an epoch
        flip the old owners of a moved arc still hold its entries, and
        the coordinator asks them to forget.  Try-locking both halves
        first means an entry still touched by an in-flight action
        (e.g. a pre-flip write committing late) is left alone -- the
        caller retries after the action resolves.  Returns ``None``
        when locked, otherwise whether an entry was present.
        """
        uid = Uid.parse(uid_text)
        probe = AtomicAction(node="forget-probe")
        locked = []
        try:
            for half, key in ((self.server_db, ("sv", uid)),
                              (self.state_db, ("st", uid))):
                half.locks.try_lock(probe.id, key, LockMode.WRITE)
                locked.append(half)
            removed = self.server_db.forget(uid)
            removed = self.state_db.forget(uid) or removed
            self._vclocks.pop(uid_text, None)
            if removed and self.coherence is not None:
                # Post-flip GC: we no longer own the entry, so the
                # registry and hotness state go with it.
                self.coherence.forget(uid_text)
            return removed
        except (LockRefused, PromotionRefused):
            return None
        finally:
            for half in locked:
                half.locks.release_all(probe.id)
            probe.run_local(probe.abort())

    def reset_volatile(self) -> None:
        """Crash semantics: drop all locks and undo in-flight actions."""
        self.server_db.reset_volatile()
        self.state_db.reset_volatile()
        self._touched.clear()
        # Vector clocks are volatile too: a recovered replica restarts
        # at the empty clock, dominated by every peer's, so repair
        # pulls it toward the survivors rather than trusting it.
        self._vclocks.clear()
        self.rpc_caller = ""

    # -- persistence -------------------------------------------------------------------

    def save_state(self) -> bytes:
        """Serialise every entry (committed data only; locks and undo
        logs are volatile by definition)."""
        out = OutputObjectState(self.uid, self.TYPE_NAME)
        sv_uids = self.server_db.all_uids()
        out.pack_int(len(sv_uids))
        for uid in sv_uids:
            snapshot = self.server_db.get_server_with_uses((0,), uid)
            self.server_db.locks.release_all(_BOOT_OWNER)
            out.pack_string(str(uid))
            out.pack_string_list(list(snapshot.hosts))
            out.pack_int(sum(len(c) for c in snapshot.uses.values()))
            for host, counters in snapshot.uses.items():
                for client, count in counters.items():
                    out.pack_string(host)
                    out.pack_string(client)
                    out.pack_int(count)
        st_uids = self.state_db.all_uids()
        out.pack_int(len(st_uids))
        for uid in st_uids:
            hosts = self.state_db.get_view((0,), uid)
            self.state_db.locks.release_all(_BOOT_OWNER)
            out.pack_string(str(uid))
            out.pack_string_list(hosts)
        return out.buffer()

    @classmethod
    def restore_state(cls, buffer: bytes, **kwargs) -> "GroupViewDatabase":
        state = InputObjectState(buffer)
        db = cls(uid=state.uid, **kwargs)
        sv_count = state.unpack_int()
        for _ in range(sv_count):
            uid = Uid.parse(state.unpack_string())
            hosts = state.unpack_string_list()
            db.server_db.define((0,), uid, hosts)
            use_count = state.unpack_int()
            for _ in range(use_count):
                host = state.unpack_string()
                client = state.unpack_string()
                count = state.unpack_int()
                for _ in range(count):
                    db.server_db.increment((0,), client, uid, [host])
        st_count = state.unpack_int()
        for _ in range(st_count):
            uid = Uid.parse(state.unpack_string())
            hosts = state.unpack_string_list()
            db.state_db.define((0,), uid, hosts)
        db.commit((0,))
        return db


_BOOT_OWNER = ActionId((0,))
