"""Tests for atomic actions: nesting, 2PC over records, abort."""

import pytest

from repro.actions import (
    AbstractRecord,
    ActionId,
    ActionStatus,
    AtomicAction,
    CallbackRecord,
    InvalidActionState,
    Vote,
)


class SpyRecord(AbstractRecord):
    """Records the phases it sees; configurable vote."""

    def __init__(self, log, tag, vote=Vote.OK, order=100,
                 fail_prepare=False, fail_commit=False):
        self.log = log
        self.tag = tag
        self.vote = vote
        self.order = order
        self.fail_prepare = fail_prepare
        self.fail_commit = fail_commit

    def prepare(self, action):
        self.log.append(("prepare", self.tag))
        if self.fail_prepare:
            raise RuntimeError("prepare blew up")
        return self.vote
        yield

    def commit(self, action):
        self.log.append(("commit", self.tag))
        if self.fail_commit:
            raise RuntimeError("commit blew up")
        return
        yield

    def abort(self, action):
        self.log.append(("abort", self.tag))
        return
        yield


def drive(generator):
    """Run a commit/abort generator that never suspends."""
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator suspended unexpectedly")


def test_action_id_lineage():
    parent = ActionId((1,))
    child = ActionId((1, 2))
    stranger = ActionId((3,))
    assert parent.related(child) and child.related(parent)
    assert not parent.related(stranger)
    assert child.depth == 2
    assert child.top_level_serial == 1
    assert str(child) == "A1.2"


def test_top_level_commit_runs_both_phases_in_order():
    log = []
    action = AtomicAction()
    action.add_record(SpyRecord(log, "b", order=200))
    action.add_record(SpyRecord(log, "a", order=100))
    status = drive(action.commit())
    assert status is ActionStatus.COMMITTED
    assert log == [("prepare", "a"), ("prepare", "b"),
                   ("commit", "a"), ("commit", "b")]


def test_readonly_vote_skips_commit_phase():
    log = []
    action = AtomicAction()
    action.add_record(SpyRecord(log, "ro", vote=Vote.READONLY))
    action.add_record(SpyRecord(log, "rw"))
    drive(action.commit())
    assert ("commit", "ro") not in log
    assert ("commit", "rw") in log


def test_abort_vote_aborts_everything():
    log = []
    action = AtomicAction()
    action.add_record(SpyRecord(log, "good", order=100))
    action.add_record(SpyRecord(log, "veto", vote=Vote.ABORT, order=200))
    status = drive(action.commit())
    assert status is ActionStatus.ABORTED
    assert ("abort", "good") in log
    assert ("abort", "veto") in log
    assert ("commit", "good") not in log


def test_prepare_exception_counts_as_veto():
    log = []
    action = AtomicAction()
    action.add_record(SpyRecord(log, "boom", fail_prepare=True))
    status = drive(action.commit())
    assert status is ActionStatus.ABORTED


def test_commit_phase_failure_is_heuristic_not_abort():
    log = []
    action = AtomicAction()
    bad = SpyRecord(log, "bad", fail_commit=True)
    action.add_record(bad)
    action.add_record(SpyRecord(log, "good"))
    status = drive(action.commit())
    assert status is ActionStatus.COMMITTED
    assert len(action.commit_failures) == 1
    assert action.commit_failures[0][0] is bad
    assert ("commit", "good") in log  # later records still commit


def test_abort_runs_records_in_reverse_order():
    log = []
    action = AtomicAction()
    action.add_record(SpyRecord(log, "first", order=100))
    action.add_record(SpyRecord(log, "second", order=200))
    drive(action.abort())
    assert log == [("abort", "second"), ("abort", "first")]


def test_nested_commit_merges_records_into_parent():
    log = []
    parent = AtomicAction()
    child = AtomicAction(parent=parent)
    child.add_record(SpyRecord(log, "from-child"))
    drive(child.commit())
    assert child.status is ActionStatus.COMMITTED
    assert log == []  # nothing ran yet
    drive(parent.commit())
    assert ("prepare", "from-child") in log
    assert ("commit", "from-child") in log


def test_nested_abort_undoes_only_child():
    log = []
    parent = AtomicAction()
    parent.add_record(SpyRecord(log, "parent-rec"))
    child = AtomicAction(parent=parent)
    child.add_record(SpyRecord(log, "child-rec"))
    drive(child.abort())
    assert log == [("abort", "child-rec")]
    drive(parent.commit())
    assert ("commit", "parent-rec") in log


def test_nested_top_level_action_is_independent():
    outer = AtomicAction()
    inner = AtomicAction(parent=outer, independent=True)
    assert inner.is_top_level
    assert inner.is_nested_top_level
    assert inner.id.depth == 1
    log = []
    inner.add_record(SpyRecord(log, "inner"))
    drive(inner.commit())
    assert ("commit", "inner") in log  # committed NOW, not with outer
    drive(outer.abort())               # outer's fate doesn't undo inner
    assert ("abort", "inner") not in log


def test_child_ids_extend_parent_path():
    parent = AtomicAction()
    child = AtomicAction(parent=parent)
    grandchild = AtomicAction(parent=child)
    assert child.id.path[:1] == parent.id.path
    assert grandchild.id.path[:2] == child.id.path
    assert grandchild.id.related(parent.id)


def test_record_enlisted_during_prepare_still_votes_and_commits():
    """Late enlistment: a prepare-phase record may reach a resource the
    action never used (state distribution Excluding through a fresh
    replica shard), enlisting a new participant mid-phase-1.  The new
    record must still vote and run phase 2."""
    log = []
    action = AtomicAction()
    late = SpyRecord(log, "late", order=600)

    def enlist_late(a):
        a.add_record(late)
        return Vote.OK

    action.add_record(CallbackRecord(on_prepare=enlist_late,
                                     on_commit=lambda a: log.append(
                                         ("commit", "early")),
                                     order=100))
    status = drive(action.commit())
    assert status is ActionStatus.COMMITTED
    assert ("prepare", "late") in log and ("commit", "late") in log


def test_late_enlisted_record_can_still_veto():
    log = []
    action = AtomicAction()
    veto = SpyRecord(log, "veto", vote=Vote.ABORT)
    action.add_record(CallbackRecord(
        on_prepare=lambda a: a.add_record(veto) or Vote.OK))
    status = drive(action.commit())
    assert status is ActionStatus.ABORTED
    assert ("abort", "veto") in log


def test_cannot_add_record_after_termination():
    action = AtomicAction()
    drive(action.commit())
    with pytest.raises(InvalidActionState):
        action.add_record(CallbackRecord())


def test_cannot_commit_twice():
    action = AtomicAction()
    drive(action.commit())
    with pytest.raises(InvalidActionState):
        drive(action.commit())


def test_cannot_abort_after_commit():
    action = AtomicAction()
    drive(action.commit())
    with pytest.raises(InvalidActionState):
        drive(action.abort())


def test_nested_commit_into_terminated_parent_rejected():
    parent = AtomicAction()
    child = AtomicAction(parent=parent)
    drive(parent.commit())
    with pytest.raises(InvalidActionState):
        drive(child.commit())


def test_callback_record_votes():
    seen = []
    action = AtomicAction()
    action.add_record(CallbackRecord(
        on_prepare=lambda a: seen.append("p") or None,
        on_commit=lambda a: seen.append("c"),
        on_abort=lambda a: seen.append("a")))
    drive(action.commit())
    assert seen == ["p", "c"]


def test_callback_record_defaults_to_readonly_without_callbacks():
    action = AtomicAction()
    record = CallbackRecord()
    action.add_record(record)
    status = drive(action.commit())
    assert status is ActionStatus.COMMITTED


def test_run_local_helper():
    action = AtomicAction()
    assert action.run_local(action.commit()) is ActionStatus.COMMITTED
