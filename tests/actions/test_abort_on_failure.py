"""The ``abort_on_failure`` handler helper (abort-on-failure invariant).

The helper is the canonical tail of every ``except BaseException``
guard around a top-level action (the ``action-leak`` rule enforces the
pattern repo-wide); these tests pin its two subtleties: no double
termination, and no yielding while the enclosing generator is closing.
"""

import pytest

from repro.actions import ActionStatus, AtomicAction, abort_on_failure
from repro.sim.errors import ProcessKilled


def drive(generator):
    """Run a generator that never suspends."""
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("generator suspended unexpectedly")


def test_aborts_a_live_action():
    action = AtomicAction()
    try:
        raise RuntimeError("body blew up")
    except RuntimeError:
        drive(abort_on_failure(action))
    assert action.status is ActionStatus.ABORTED


def test_aborts_under_process_kill():
    # ProcessKilled is how the kernel crashes a node's processes; the
    # dying process must still release what it can on the way down.
    action = AtomicAction()
    try:
        raise ProcessKilled("node crashed")
    except ProcessKilled:
        drive(abort_on_failure(action))
    assert action.status is ActionStatus.ABORTED


def test_leaves_a_committed_action_alone():
    action = AtomicAction()
    drive(action.commit())
    try:
        raise RuntimeError("failure after the decision")
    except RuntimeError:
        drive(abort_on_failure(action))  # no InvalidActionState
    assert action.status is ActionStatus.COMMITTED


def test_leaves_an_aborted_action_alone():
    action = AtomicAction()
    drive(action.abort())
    try:
        raise RuntimeError("failure after an inner abort")
    except RuntimeError:
        drive(abort_on_failure(action))
    assert action.status is ActionStatus.ABORTED


def test_skips_abort_while_generator_is_closing():
    # Yielding from a closing generator is illegal ("generator ignored
    # GeneratorExit"), so under GeneratorExit the helper must return
    # without touching the action: presumed-abort and the cleanup
    # daemons resolve it, exactly as for a crashed client.
    action = AtomicAction()

    def guarded_body():
        try:
            yield "parked"
        except BaseException:
            yield from abort_on_failure(action)
            raise

    gen = guarded_body()
    assert next(gen) == "parked"
    gen.close()  # must not raise RuntimeError
    assert action.status is ActionStatus.RUNNING


def test_outside_any_exception_aborts_normally():
    # sys.exc_info() is empty: not a GeneratorExit, so the abort runs.
    action = AtomicAction()
    drive(abort_on_failure(action))
    assert action.status is ActionStatus.ABORTED
