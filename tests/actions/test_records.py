"""Tests for reusable intention records."""

from repro.actions import (
    ActionStatus,
    AtomicAction,
    LockManager,
    LockMode,
    LockReleaseRecord,
    RemoteParticipantRecord,
)
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler


def drive(generator):
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("suspended unexpectedly")


def test_lock_release_record_releases_on_commit():
    lm = LockManager()
    action = AtomicAction()
    lm.try_lock(action.id, "e", LockMode.WRITE)
    action.add_record(LockReleaseRecord(lm, action.id))
    drive(action.commit())
    assert not lm.is_locked("e")


def test_lock_release_record_releases_on_abort():
    lm = LockManager()
    action = AtomicAction()
    lm.try_lock(action.id, "e", LockMode.READ)
    action.add_record(LockReleaseRecord(lm, action.id))
    drive(action.abort())
    assert not lm.is_locked("e")


def test_nested_commit_inherits_locks_to_parent():
    lm = LockManager()
    parent = AtomicAction()
    child = AtomicAction(parent=parent)
    lm.try_lock(child.id, "e", LockMode.READ)
    child.add_record(LockReleaseRecord(lm, child.id))
    drive(child.commit())
    # Lock now owned by the parent, still held.
    assert lm.mode_held(parent.id, "e") is LockMode.READ
    drive(parent.commit())
    assert not lm.is_locked("e")


def test_merge_does_not_duplicate_release_records():
    lm = LockManager()
    parent = AtomicAction()
    for _ in range(3):
        child = AtomicAction(parent=parent)
        lm.try_lock(child.id, "e", LockMode.READ)
        child.add_record(LockReleaseRecord(lm, child.id))
        drive(child.commit())
    releases = [r for r in parent.records if isinstance(r, LockReleaseRecord)]
    assert len(releases) == 1


class Participant:
    """A 2PC participant service with scripted behaviour."""

    def __init__(self, verdict="ok"):
        self.verdict = verdict
        self.calls = []

    def prepare(self, path):
        self.calls.append(("prepare", tuple(path)))
        return self.verdict

    def commit(self, path):
        self.calls.append(("commit", tuple(path)))

    def abort(self, path):
        self.calls.append(("abort", tuple(path)))


def make_rpc_world():
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    agents = {}
    for name in ("client", "db"):
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
    return s, net, agents


def run_action_in_process(s, action, do="commit"):
    def body():
        if do == "commit":
            return (yield from action.commit())
        return (yield from action.abort())
    return s.run_until_settled(s.spawn(body()), until=100.0)


def test_remote_participant_full_commit():
    s, _, agents = make_rpc_world()
    participant = Participant()
    agents["db"].register("svc", participant)
    action = AtomicAction()
    action.add_record(RemoteParticipantRecord(agents["client"], "db", "svc"))
    status = run_action_in_process(s, action)
    assert status is ActionStatus.COMMITTED
    assert [c[0] for c in participant.calls] == ["prepare", "commit"]
    assert participant.calls[0][1] == action.id.path


def test_remote_participant_readonly_skips_commit():
    s, _, agents = make_rpc_world()
    participant = Participant(verdict="readonly")
    agents["db"].register("svc", participant)
    action = AtomicAction()
    action.add_record(RemoteParticipantRecord(agents["client"], "db", "svc"))
    status = run_action_in_process(s, action)
    assert status is ActionStatus.COMMITTED
    assert [c[0] for c in participant.calls] == ["prepare"]


def test_remote_participant_abort_verdict_vetoes():
    s, _, agents = make_rpc_world()
    participant = Participant(verdict="abort")
    agents["db"].register("svc", participant)
    action = AtomicAction()
    action.add_record(RemoteParticipantRecord(agents["client"], "db", "svc"))
    status = run_action_in_process(s, action)
    assert status is ActionStatus.ABORTED
    assert [c[0] for c in participant.calls] == ["prepare", "abort"]


def test_unreachable_participant_vetoes_prepare():
    s, net, agents = make_rpc_world()
    agents["db"].register("svc", Participant())
    net.interface("db").up = False
    action = AtomicAction()
    action.add_record(RemoteParticipantRecord(agents["client"], "db", "svc"))
    status = run_action_in_process(s, action)
    assert status is ActionStatus.ABORTED


def test_abort_tolerates_unreachable_participant():
    s, net, agents = make_rpc_world()
    agents["db"].register("svc", Participant())
    net.interface("db").up = False
    action = AtomicAction()
    action.add_record(RemoteParticipantRecord(agents["client"], "db", "svc"))
    status = run_action_in_process(s, action, do="abort")
    assert status is ActionStatus.ABORTED


# -- prepare retries (the gray-participant path) -----------------------------


def test_retries_need_a_seeded_rng():
    import pytest

    s, _, agents = make_rpc_world()
    with pytest.raises(ValueError, match="seeded rng"):
        RemoteParticipantRecord(agents["client"], "db", "svc", retries=2)
    with pytest.raises(ValueError):
        RemoteParticipantRecord(agents["client"], "db", "svc", retries=-1)


def test_prepare_retry_reaches_a_recovering_gray_participant():
    """The gray window: drop every prepare for a while, then deliver.
    With retries the action commits; without, it aborts instantly."""
    from repro.sim import SeededRng

    def attempt(retries):
        s, net, agents = make_rpc_world()
        participant = Participant()
        agents["db"].register("svc", participant)
        # Gray window: every request to the db host vanishes for 0.4s.
        net.block("client", "db")
        s.schedule_at(0.4, net.unblock, "client", "db")
        action = AtomicAction()
        rng = SeededRng(9).substream("retry") if retries else None
        action.add_record(RemoteParticipantRecord(
            agents["client"], "db", "svc", retries=retries,
            backoff=0.3, rng=rng))
        return run_action_in_process(s, action), participant

    status, participant = attempt(retries=3)
    assert status is ActionStatus.COMMITTED
    assert [c[0] for c in participant.calls] == ["prepare", "commit"]

    status, participant = attempt(retries=0)
    assert status is ActionStatus.ABORTED
    # Fail-fast baseline: no prepare ever got through (a post-heal
    # presumed abort to the untouched participant is a no-op).
    assert "prepare" not in [c[0] for c in participant.calls]


def test_prepare_retry_budget_exhausts_to_abort():
    from repro.sim import SeededRng

    s, net, agents = make_rpc_world()
    agents["db"].register("svc", Participant())
    net.interface("db").up = False  # dark for good, not just gray
    action = AtomicAction()
    action.add_record(RemoteParticipantRecord(
        agents["client"], "db", "svc", retries=2, backoff=0.05,
        rng=SeededRng(9).substream("retry")))
    status = run_action_in_process(s, action)
    assert status is ActionStatus.ABORTED
