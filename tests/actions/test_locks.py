"""Tests for multi-mode locking, the paper's section-4 lock semantics."""

import pytest

from repro.actions import (
    ActionId,
    LockManager,
    LockMode,
    LockRefused,
    PromotionRefused,
    lock_compatible,
)

A1 = ActionId((1,))
A2 = ActionId((2,))
A3 = ActionId((3,))
A1_CHILD = ActionId((1, 10))
A1_GRANDCHILD = ActionId((1, 10, 20))


def test_compatibility_matrix_matches_paper():
    R, W, X = LockMode.READ, LockMode.WRITE, LockMode.EXCLUDE_WRITE
    assert lock_compatible(R, R)
    assert not lock_compatible(R, W)
    assert lock_compatible(R, X)
    assert not lock_compatible(W, R)
    assert not lock_compatible(W, W)
    assert not lock_compatible(W, X)
    assert lock_compatible(X, R)
    assert not lock_compatible(X, W)
    assert not lock_compatible(X, X)


def test_shared_reads():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    lm.try_lock(A2, "e", LockMode.READ)
    assert len(lm.holders_of("e")) == 2


def test_write_excludes_read():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.WRITE)
    with pytest.raises(LockRefused):
        lm.try_lock(A2, "e", LockMode.READ)


def test_read_blocks_write():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    with pytest.raises(LockRefused):
        lm.try_lock(A2, "e", LockMode.WRITE)


def test_promotion_read_to_write_sole_holder():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    lm.try_lock(A1, "e", LockMode.WRITE)  # promotion succeeds
    assert lm.mode_held(A1, "e") is LockMode.WRITE
    assert lm.promotions == 1


def test_promotion_refused_with_other_readers():
    """The paper's 4.2.1 motivating failure: shared readers block
    read->write promotion."""
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    lm.try_lock(A2, "e", LockMode.READ)
    with pytest.raises(PromotionRefused):
        lm.try_lock(A1, "e", LockMode.WRITE)
    assert lm.promotion_refusals == 1
    assert lm.mode_held(A1, "e") is LockMode.READ  # unchanged


def test_exclude_write_promotion_succeeds_with_readers():
    """The exclude-write fix: promotion shared with read locks."""
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    lm.try_lock(A2, "e", LockMode.READ)
    lm.try_lock(A1, "e", LockMode.EXCLUDE_WRITE)
    assert lm.mode_held(A1, "e") is LockMode.EXCLUDE_WRITE
    # And a third reader can still join.
    lm.try_lock(A3, "e", LockMode.READ)


def test_two_excluders_conflict():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.EXCLUDE_WRITE)
    with pytest.raises(LockRefused):
        lm.try_lock(A2, "e", LockMode.EXCLUDE_WRITE)


def test_rerequest_weaker_mode_is_noop():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.WRITE)
    lm.try_lock(A1, "e", LockMode.READ)
    assert lm.mode_held(A1, "e") is LockMode.WRITE


def test_ancestors_and_descendants_never_conflict():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    lm.try_lock(A1_CHILD, "e", LockMode.WRITE)     # child may write
    lm.try_lock(A1_GRANDCHILD, "e", LockMode.WRITE)
    with pytest.raises(LockRefused):
        lm.try_lock(A2, "e", LockMode.READ)        # stranger still blocked


def test_release_all():
    lm = LockManager()
    lm.try_lock(A1, "e1", LockMode.READ)
    lm.try_lock(A1, "e2", LockMode.WRITE)
    lm.try_lock(A2, "e1", LockMode.READ)
    assert lm.release_all(A1) == 2
    assert lm.mode_held(A1, "e1") is None
    assert lm.mode_held(A2, "e1") is LockMode.READ
    lm.try_lock(A2, "e2", LockMode.WRITE)  # e2 now free


def test_release_single_resource():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    assert lm.release(A1, "e") is True
    assert lm.release(A1, "e") is False
    assert not lm.is_locked("e")


def test_inherit_transfers_to_parent():
    lm = LockManager()
    parent, child = A1, A1_CHILD
    lm.try_lock(child, "e", LockMode.WRITE)
    moved = lm.inherit(child, parent)
    assert moved == 1
    assert lm.mode_held(parent, "e") is LockMode.WRITE
    assert lm.mode_held(child, "e") is None


def test_inherit_keeps_strongest_mode():
    lm = LockManager()
    parent, child = A1, A1_CHILD
    lm.try_lock(parent, "e", LockMode.READ)
    lm.try_lock(child, "e", LockMode.WRITE)
    lm.inherit(child, parent)
    assert lm.mode_held(parent, "e") is LockMode.WRITE
    assert len(lm.holders_of("e")) == 1


def test_inherit_never_weakens_the_parent():
    """The merge is max(), not last-wins: a child READ folded into a
    parent WRITE leaves the parent at WRITE."""
    lm = LockManager()
    parent, child = A1, A1_CHILD
    lm.try_lock(parent, "e", LockMode.WRITE)
    lm.try_lock(child, "e", LockMode.READ)
    lm.inherit(child, parent)
    assert lm.mode_held(parent, "e") is LockMode.WRITE
    assert lm.mode_held(child, "e") is None


def test_inherit_merges_exclude_write_over_read():
    lm = LockManager()
    parent, child = A1, A1_CHILD
    lm.try_lock(parent, "e", LockMode.READ)
    lm.try_lock(child, "e", LockMode.EXCLUDE_WRITE)
    lm.inherit(child, parent)
    assert lm.mode_held(parent, "e") is LockMode.EXCLUDE_WRITE
    # The merged lock still shares with readers, as 4.2.1 requires.
    lm.try_lock(A2, "e", LockMode.READ)


def test_inherit_merges_every_resource_in_one_pass():
    lm = LockManager()
    parent, child = A1, A1_CHILD
    lm.try_lock(parent, "e1", LockMode.READ)
    lm.try_lock(child, "e1", LockMode.WRITE)
    lm.try_lock(child, "e2", LockMode.READ)
    assert lm.inherit(child, parent) == 2
    assert lm.mode_held(parent, "e1") is LockMode.WRITE
    assert lm.mode_held(parent, "e2") is LockMode.READ
    assert lm.owners() == {parent}


def test_exclude_write_self_conflict_on_promotion():
    """Two readers cannot both promote to EXCLUDE_WRITE: the second
    promotion hits the mode's self-conflict and is refused."""
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.READ)
    lm.try_lock(A2, "e", LockMode.READ)
    lm.try_lock(A1, "e", LockMode.EXCLUDE_WRITE)
    with pytest.raises(PromotionRefused):
        lm.try_lock(A2, "e", LockMode.EXCLUDE_WRITE)
    assert lm.mode_held(A2, "e") is LockMode.READ  # demand left unchanged


def test_owners_listing():
    lm = LockManager()
    lm.try_lock(A1, "e1", LockMode.READ)
    lm.try_lock(A2, "e2", LockMode.READ)
    assert lm.owners() == {A1, A2}


def test_grant_and_refusal_counters():
    lm = LockManager()
    lm.try_lock(A1, "e", LockMode.WRITE)
    with pytest.raises(LockRefused):
        lm.try_lock(A2, "e", LockMode.READ)
    assert lm.grants == 1
    assert lm.refusals == 1
