"""Tests for the persistent object programming model."""

import pytest

from repro import LockMode, PersistentObject, operation
from repro.core.objects import ObjectClassRegistry, operation_mode
from repro.storage import Uid

from tests.conftest import Counter, Register


def test_serialise_deserialise_roundtrip():
    counter = Counter(Uid("n", 1), value=42)
    clone = Counter.deserialise(counter.serialise())
    assert clone.value == 42
    assert clone.uid == counter.uid


def test_deserialise_type_check():
    counter = Counter(Uid("n", 1), value=1)
    with pytest.raises(TypeError):
        Register.deserialise(counter.serialise())


def test_operation_modes_declared():
    counter = Counter(Uid("n", 1))
    assert operation_mode(counter, "get") is LockMode.READ
    assert operation_mode(counter, "add") is LockMode.WRITE
    assert operation_mode(counter, "save_state") is None
    assert operation_mode(counter, "nonexistent") is None


def test_registry_instantiate():
    registry = ObjectClassRegistry()
    registry.register(Counter)
    original = Counter(Uid("n", 7), value=9)
    clone = registry.instantiate(original.serialise())
    assert isinstance(clone, Counter)
    assert clone.value == 9


def test_registry_rejects_non_persistent_class():
    registry = ObjectClassRegistry()
    with pytest.raises(TypeError):
        registry.register(object)


def test_registry_rejects_conflicting_type_name():
    registry = ObjectClassRegistry()
    registry.register(Counter)

    class Impostor(PersistentObject):
        TYPE_NAME = Counter.TYPE_NAME

        def save_state(self, out):
            pass

        def restore_state(self, state):
            pass

    with pytest.raises(ValueError):
        registry.register(Impostor)


def test_registry_reregister_same_class_ok():
    registry = ObjectClassRegistry()
    registry.register(Counter)
    registry.register(Counter)  # idempotent


def test_registry_unknown_type():
    registry = ObjectClassRegistry()
    reg = Register(Uid("n", 1), text="x")
    with pytest.raises(KeyError):
        registry.instantiate(reg.serialise())
    with pytest.raises(KeyError):
        registry.class_for("nope")


def test_mode_for_lookup():
    registry = ObjectClassRegistry()
    registry.register(Counter)
    assert registry.mode_for(Counter.TYPE_NAME, "add") is LockMode.WRITE
    assert registry.mode_for(Counter.TYPE_NAME, "get") is LockMode.READ
    assert registry.mode_for(Counter.TYPE_NAME, "whatever") is None


def test_base_class_methods_abstract():
    obj = PersistentObject(Uid("n", 1))
    with pytest.raises(NotImplementedError):
        obj.serialise()


def test_registry_usable_as_decorator():
    registry = ObjectClassRegistry()

    @registry.register
    class Decorated(PersistentObject):
        TYPE_NAME = "tests.Decorated"

        def save_state(self, out):
            out.pack_int(1)

        def restore_state(self, state):
            state.unpack_int()

    assert "tests.Decorated" in registry.known_types()
