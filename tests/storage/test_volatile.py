"""Tests for volatile memory."""

from repro.storage import VolatileStore


def test_put_get_pop():
    store = VolatileStore("n")
    store.put("k", 1)
    assert store.get("k") == 1
    assert "k" in store
    assert store.pop("k") == 1
    assert store.get("k", "default") == "default"


def test_wipe_clears_everything():
    store = VolatileStore("n")
    for i in range(5):
        store.put(i, i)
    store.wipe()
    assert len(store) == 0
    assert store.wipe_count == 1


def test_keys_snapshot_safe_to_mutate_during_iteration():
    store = VolatileStore("n")
    store.put("a", 1)
    store.put("b", 2)
    for key in store.keys():
        store.pop(key)
    assert len(store) == 0
