"""Tests for the shadow-copy object store."""

import pytest

from repro.storage import (
    NoSuchShadow,
    NoSuchState,
    ObjectStore,
    StoreUnavailable,
    Uid,
)

UID = Uid("n", 1)


def test_install_and_read():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    state = store.read_committed(UID)
    assert state.buffer == b"v1"
    assert state.version == 1


def test_read_missing_raises():
    with pytest.raises(NoSuchState):
        ObjectStore("beta").read_committed(UID)


def test_shadow_invisible_until_commit():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    store.write_shadow(UID, b"v2", 2)
    assert store.read_committed(UID).buffer == b"v1"
    store.commit_shadow(UID)
    assert store.read_committed(UID).buffer == b"v2"
    assert store.version_of(UID) == 2


def test_commit_without_shadow_raises():
    store = ObjectStore("beta")
    with pytest.raises(NoSuchShadow):
        store.commit_shadow(UID)


def test_discard_shadow_aborts():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    store.write_shadow(UID, b"v2", 2)
    store.discard_shadow(UID)
    assert store.read_committed(UID).buffer == b"v1"
    assert not store.has_shadow(UID)
    store.discard_shadow(UID)  # idempotent


def test_shadow_version_must_be_newer():
    store = ObjectStore("beta")
    store.install(UID, b"v2", 2)
    with pytest.raises(ValueError):
        store.write_shadow(UID, b"old", 2)
    with pytest.raises(ValueError):
        store.write_shadow(UID, b"older", 1)


def test_crash_loses_shadows_keeps_committed():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    store.write_shadow(UID, b"v2", 2)
    store.mark_down()
    store.mark_up()
    assert store.read_committed(UID).buffer == b"v1"
    assert not store.has_shadow(UID)


def test_down_store_refuses_everything():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    store.mark_down()
    for op in (lambda: store.read_committed(UID),
               lambda: store.write_shadow(UID, b"x", 2),
               lambda: store.commit_shadow(UID),
               lambda: store.install(UID, b"x", 2),
               lambda: store.uids(),
               lambda: store.version_of(UID)):
        with pytest.raises(StoreUnavailable):
            op()


def test_install_refuses_version_regression():
    store = ObjectStore("beta")
    store.install(UID, b"v5", 5)
    with pytest.raises(ValueError):
        store.install(UID, b"v3", 3)
    store.install(UID, b"v5b", 5)  # same version allowed (idempotent repair)


def test_remove():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    store.remove(UID)
    assert not store.contains(UID)
    assert store.version_of(UID) == 0


def test_uids_sorted():
    store = ObjectStore("beta")
    for serial in (3, 1, 2):
        store.install(Uid("n", serial), b"x", 1)
    assert store.uids() == [Uid("n", 1), Uid("n", 2), Uid("n", 3)]


def test_shadow_version_of():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    assert store.shadow_version_of(UID) == 0
    store.write_shadow(UID, b"v2", 2)
    assert store.shadow_version_of(UID) == 2


def test_commit_counter():
    store = ObjectStore("beta")
    store.install(UID, b"v1", 1)
    store.write_shadow(UID, b"v2", 2)
    store.commit_shadow(UID)
    store.write_shadow(UID, b"v3", 3)
    store.discard_shadow(UID)
    assert store.commits == 1
    assert store.aborts == 1
