"""Tests for the typed serialisation buffers."""

import pytest

from repro.storage import DeserialisationError, InputObjectState, OutputObjectState, Uid


def roundtrip(pack, unpack_name):
    out = OutputObjectState(Uid("n", 1), "test.Type")
    pack(out)
    state = InputObjectState(out.buffer())
    return state, getattr(state, unpack_name)


def test_header_roundtrip():
    out = OutputObjectState(Uid("node", 7), "my.Class")
    state = InputObjectState(out.buffer())
    assert state.uid == Uid("node", 7)
    assert state.type_name == "my.Class"
    assert state.exhausted


def test_int_roundtrip_including_negatives():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_int(0).pack_int(-5).pack_int(2**62)
    state = InputObjectState(out.buffer())
    assert state.unpack_int() == 0
    assert state.unpack_int() == -5
    assert state.unpack_int() == 2**62


def test_float_roundtrip():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_float(3.14159).pack_float(-0.0)
    state = InputObjectState(out.buffer())
    assert state.unpack_float() == 3.14159
    assert state.unpack_float() == 0.0


def test_bool_roundtrip():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_bool(True).pack_bool(False)
    state = InputObjectState(out.buffer())
    assert state.unpack_bool() is True
    assert state.unpack_bool() is False


def test_string_roundtrip_unicode():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_string("héllo wörld ✓").pack_string("")
    state = InputObjectState(out.buffer())
    assert state.unpack_string() == "héllo wörld ✓"
    assert state.unpack_string() == ""


def test_bytes_roundtrip():
    out = OutputObjectState(Uid("n", 1), "t")
    payload = bytes(range(256))
    out.pack_bytes(payload)
    state = InputObjectState(out.buffer())
    assert state.unpack_bytes() == payload


def test_none_roundtrip():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_none()
    state = InputObjectState(out.buffer())
    assert state.unpack_none() is None


def test_uid_roundtrip():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_uid(Uid("other", 99))
    state = InputObjectState(out.buffer())
    assert state.unpack_uid() == Uid("other", 99)


def test_string_list_roundtrip():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_string_list(["a", "b", "c"]).pack_string_list([])
    state = InputObjectState(out.buffer())
    assert state.unpack_string_list() == ["a", "b", "c"]
    assert state.unpack_string_list() == []


def test_mixed_sequence_in_order():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_int(1).pack_string("two").pack_bool(True).pack_float(4.0)
    state = InputObjectState(out.buffer())
    assert state.unpack_int() == 1
    assert state.unpack_string() == "two"
    assert state.unpack_bool() is True
    assert state.unpack_float() == 4.0
    assert state.exhausted


def test_type_mismatch_raises():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_int(5)
    state = InputObjectState(out.buffer())
    with pytest.raises(DeserialisationError, match="expected tag"):
        state.unpack_string()


def test_underrun_raises():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_int(5)
    state = InputObjectState(out.buffer())
    state.unpack_int()
    with pytest.raises(DeserialisationError):
        state.unpack_int()


def test_truncated_buffer_raises():
    out = OutputObjectState(Uid("n", 1), "t")
    out.pack_string("hello")
    buffer = out.buffer()[:-3]
    state = InputObjectState(buffer)
    with pytest.raises(DeserialisationError):
        state.unpack_string()
