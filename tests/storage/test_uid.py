"""Tests for object UIDs."""

import pytest

from repro.storage import Uid, UidFactory


def test_factory_allocates_sequentially():
    factory = UidFactory("node-a")
    u1, u2 = factory.allocate(), factory.allocate()
    assert u1 == Uid("node-a", 1)
    assert u2 == Uid("node-a", 2)
    assert u1 != u2


def test_str_and_parse_roundtrip():
    uid = Uid("alpha:with:colons", 42)
    assert Uid.parse(str(uid)) == uid


def test_parse_rejects_garbage():
    for bad in ("", "noserial", "name:", ":1", "name:notanumber"):
        with pytest.raises(ValueError):
            Uid.parse(bad)


def test_ordering_and_hashing():
    a1, a2, b1 = Uid("a", 1), Uid("a", 2), Uid("b", 1)
    assert a1 < a2 < b1
    assert sorted([b1, a2, a1]) == [a1, a2, b1]
    assert len({a1, Uid("a", 1)}) == 1


def test_uids_from_different_factories_never_collide():
    f1, f2 = UidFactory("n1"), UidFactory("n2")
    uids = {f1.allocate() for _ in range(10)} | {f2.allocate() for _ in range(10)}
    assert len(uids) == 20
