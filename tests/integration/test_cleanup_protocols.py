"""End-to-end tests for the cleanup protocols the paper defers.

Section 4.1.3: "a crash of a client does not automatically undo changes
made to the database.  So, failure detection and cleanup protocols will
be required."  These tests exercise the full loop: crash -> orphaned
state (db counters, server locks) -> detection -> repair -> the system
serves the next client as if nothing happened.
"""

from repro import DistributedSystem, SingleCopyPassive, SystemConfig

from tests.conftest import Counter, add_work, get_work


def build(seed=17, **config):
    system = DistributedSystem(SystemConfig(
        seed=seed, binding_scheme="independent",
        enable_cleaner=True, cleaner_interval=2.0, **config))
    system.registry.register(Counter)
    for host in ("s1", "s2"):
        system.add_node(host, server=True)
    system.add_node("t1", store=True)
    client = system.add_client("c1", policy=SingleCopyPassive())
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=["s1", "s2"], st_hosts=["t1"])
    return system, client, uid


def orphan_count(system, uid):
    snapshot = system.db.get_server_with_uses((0,), str(uid))
    system._release_probe_locks()
    return sum(sum(c.values()) for c in snapshot.uses.values())


def test_full_cleanup_cycle_after_client_crash():
    system, client, uid = build()

    def crashy(txn):
        yield from txn.invoke(uid, "add", 5)
        system.nodes["c1"].crash()
        yield from txn.invoke(uid, "add", 5)

    client.transaction(crashy)
    system.run(until=1.0)
    assert orphan_count(system, uid) > 0

    # Let both daemons (db cleaner + server janitor) do their rounds.
    system.run(until=15.0)
    assert orphan_count(system, uid) == 0

    # A second client finds a fully healthy object: quiescent entry,
    # no stale locks, pre-crash state.
    other = system.add_client("c2", policy=SingleCopyPassive())
    result = system.run_transaction(other, get_work(uid))
    assert result.committed
    assert result.value == 0  # the orphaned +5 was rolled back


def test_quiescence_restored_enables_insert():
    """After cleanup, the object is quiescent again, so a recovering
    server node's Insert (section 4.1.2) can finally succeed."""
    system, client, uid = build()

    def crashy(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["c1"].crash()
        yield from txn.invoke(uid, "add", 1)

    client.transaction(crashy)
    system.run(until=1.0)
    assert not system.db.is_quiescent(str(uid))
    system.run(until=15.0)
    assert system.db.is_quiescent(str(uid))


def test_cleaner_and_janitor_are_independent():
    """Only the janitor handles server locks; only the cleaner handles
    db counters -- crash a client bound but between db actions."""
    system, client, uid = build()

    # Commit one normal transaction (unbind decrements), then crash the
    # client AFTER everything resolved: nothing to clean.
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    system.nodes["c1"].crash()
    system.run(until=15.0)
    assert orphan_count(system, uid) == 0
    host = system.nodes["s1"].rpc.service("servers")
    assert host.janitor_aborts == 0
