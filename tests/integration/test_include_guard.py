"""Regression tests for the Exclude/recovery race (include guard).

A store can be Excluded by a commit whose failure observation raced
with the store's own recovery: the exclusion lands *after* the one-shot
recovery pass finished, so nothing would ever Include the store back.
The periodic include guard on store nodes repairs this.
"""

from tests.conftest import add_work, build_system, get_work


def test_exclusion_landing_after_recovery_is_repaired():
    system, client, uid = build_system(sv=("s1",), st=("t1", "t2"))

    # Reproduce the race deterministically: crash t2, start a commit
    # that observes the crash, recover t2 BEFORE the commit's exclusion
    # executes at the db.
    def racy(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["t2"].crash()
        # Recover t2 almost immediately: the recovery pass will find t2
        # still in St (nothing excluded yet) and finish as a no-op,
        # while the commit below then Excludes t2.
        system.scheduler.schedule(0.02, system.nodes["t2"].recover)

    result = system.run_transaction(client, racy)
    assert result.committed
    # Let the race fully play out, then the guard repair it.
    system.run(until=system.scheduler.now + 15.0)
    assert sorted(system.db_st(uid)) == ["t1", "t2"]
    versions = system.store_versions(uid)
    assert versions["t2"] == versions["t1"]
    manager = system.recovery_managers["t2"]
    assert manager.guard_reinclusions >= 1 or manager.recoveries_completed >= 1


def test_st_never_left_empty_with_single_store():
    """The |St|=1 variant of the race must not strand St empty."""
    system, client, uid = build_system(sv=("s1",), st=("t1",))

    def racy(txn):
        yield from txn.invoke(uid, "add", 1)
        t1_store = system.nodes["t1"].object_store
        original = t1_store.write_shadow

        def write_and_die(uid_, buffer, version):
            original(uid_, buffer, version)
            system.scheduler.call_soon(system.nodes["t1"].crash)
            system.scheduler.schedule(0.3, system.nodes["t1"].recover)

        t1_store.write_shadow = write_and_die

    result = system.run_transaction(client, racy)
    system.run(until=system.scheduler.now + 15.0)
    assert system.db_st(uid) == ["t1"], "St must heal to contain t1"
    # The system remains usable afterwards.
    follow_up = system.run_transaction(client, add_work(uid, 1))
    assert follow_up.committed


def test_guard_probe_failure_aborts_instead_of_leaking_locks():
    """Regression: the guard's get_view probe takes a read lock at the
    db *before* UnknownObject is raised (entry lookup follows locking).
    The old bare ``except: continue`` abandoned the probe action in
    RUNNING state, leaving that read lock held on the entry until a
    cleaner happened by; the handler must abort the action instead."""
    system, client, uid = build_system(sv=("s1",), st=("t1",))
    # A state the store holds but the database never defined -- e.g. an
    # object whose define aborted after bootstrap copied the state.
    ghost = system.new_uid()
    system.nodes["t1"].object_store.install(ghost, b"", version=1)
    system.run(until=system.scheduler.now + 10.0)  # several guard rounds
    assert not system.db.state_db.locks.is_locked(("st", ghost)), \
        "an abandoned probe action must not leave read locks behind"
    assert not system.db.server_db.locks.is_locked(("sv", ghost))
    # The system stays fully usable for real objects.
    assert system.run_transaction(client, add_work(uid, 1)).committed


def test_guard_does_nothing_when_membership_correct():
    system, client, uid = build_system(sv=("s1",), st=("t1", "t2"))
    for _ in range(3):
        assert system.run_transaction(client, add_work(uid, 1)).committed
    system.run(until=system.scheduler.now + 10.0)
    for name in ("t1", "t2"):
        assert system.recovery_managers[name].guard_reinclusions == 0
