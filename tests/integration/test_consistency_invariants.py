"""System-wide consistency invariants under randomised fault workloads.

The paper's core guarantee: the naming service binds clients only to
mutually consistent, latest-state replicas.  Operationally:

- every store named in ``St_A`` that is up holds the same committed
  version of ``A`` whenever the object is quiescent;
- a committed transaction's effects are never lost (committed counter
  increments survive);
- an aborted transaction's effects are never visible.
"""

import pytest

from repro import (
    ActiveReplication,
    CoordinatorCohortReplication,
    DistributedSystem,
    SingleCopyPassive,
    SystemConfig,
)

from tests.conftest import Counter, add_work, get_work


def run_chaos(policy, seed, rounds=30, crash_every=4):
    """Run ``rounds`` increments with periodic crash/recover churn."""
    system = DistributedSystem(SystemConfig(seed=seed))
    system.registry.register(Counter)
    for host in ("s1", "s2", "s3"):
        system.add_node(host, server=True)
    for host in ("t1", "t2"):
        system.add_node(host, store=True)
    client = system.add_client("c1", policy=policy)
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=["s1", "s2", "s3"],
                               st_hosts=["t1", "t2"])
    rng = system.rng.substream("chaos")
    committed = 0
    crashed: list[str] = []
    for i in range(rounds):
        if i % crash_every == crash_every - 1:
            # Crash one random node (never all stores at once).
            candidates = [n for n in ("s1", "s2", "s3", "t1", "t2")
                          if not system.nodes[n].crashed]
            up_stores = [n for n in ("t1", "t2") if not system.nodes[n].crashed]
            target = rng.choice(candidates)
            if target in up_stores and len(up_stores) == 1:
                target = rng.choice([c for c in candidates if c != target])
            system.nodes[target].crash()
            crashed.append(target)
        elif crashed and i % crash_every == 0:
            system.nodes[crashed.pop(0)].recover()
            system.run(until=system.scheduler.now + 15)
        result = system.run_transaction(client, add_work(uid, 1))
        if result.committed:
            committed += 1
    # Let every pending recovery settle.
    for name in list(crashed):
        system.nodes[name].recover()
    system.run(until=system.scheduler.now + 30)
    return system, client, uid, committed


POLICIES = [
    ("single_copy", SingleCopyPassive),
    ("active", ActiveReplication),
    ("coordinator_cohort", CoordinatorCohortReplication),
]


@pytest.mark.parametrize("name,policy_cls", POLICIES)
def test_committed_increments_never_lost(name, policy_cls):
    system, client, uid, committed = run_chaos(policy_cls(), seed=101)
    final = system.run_transaction(client, get_work(uid))
    assert final.committed
    assert final.value == committed


@pytest.mark.parametrize("name,policy_cls", POLICIES)
def test_included_stores_mutually_consistent_at_quiescence(name, policy_cls):
    system, client, uid, _ = run_chaos(policy_cls(), seed=202)
    st = system.db_st(uid)
    versions = {h: v for h, v in system.store_versions(uid).items() if h in st}
    assert len(versions) == len(st), "an St member is down after settling"
    assert len(set(versions.values())) == 1, f"St stores diverge: {versions}"


@pytest.mark.parametrize("name,policy_cls", POLICIES)
def test_st_never_empty_after_settling(name, policy_cls):
    system, client, uid, _ = run_chaos(policy_cls(), seed=303)
    assert len(system.db_st(uid)) >= 1


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chaos_run_is_deterministic(seed):
    def outcome(s):
        system, client, uid, committed = run_chaos(SingleCopyPassive(),
                                                   seed=s, rounds=12)
        final = system.run_transaction(client, get_work(uid))
        return committed, final.value
    assert outcome(seed) == outcome(seed)


def test_replication_improves_chaos_survival():
    """More replicas -> at least as many commits under the same churn."""
    def committed_with(sv, st, seed=42):
        system = DistributedSystem(SystemConfig(seed=seed))
        system.registry.register(Counter)
        for host in ("s1", "s2", "s3"):
            system.add_node(host, server=True)
        for host in ("t1", "t2"):
            system.add_node(host, store=True)
        client = system.add_client("c1", policy=SingleCopyPassive())
        uid = system.create_object(Counter(system.new_uid(), value=0),
                                   sv_hosts=sv, st_hosts=st)
        # Same crash schedule for both configurations.
        count = 0
        for i in range(10):
            if i == 3:
                system.nodes["s1"].crash()
            if i == 6:
                system.nodes["t1"].crash()
            if system.run_transaction(client, add_work(uid, 1)).committed:
                count += 1
        return count

    lone = committed_with(sv=["s1"], st=["t1"])
    replicated = committed_with(sv=["s1", "s2", "s3"], st=["t1", "t2"])
    assert replicated > lone
