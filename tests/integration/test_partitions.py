"""Partition behaviour: the paper assumes partitions prevent active
replication from keeping the object available ('in the absence of
network partitions...'); these tests pin what our substrate does."""

from repro import ActiveReplication, SingleCopyPassive

from tests.conftest import add_work, build_system, get_work


def test_client_partitioned_from_everything_aborts():
    system, client, uid = build_system()
    system.network.partition({"c1"})
    result = system.run_transaction(client, add_work(uid, 1))
    assert not result.committed
    system.network.heal()
    assert system.run_transaction(client, add_work(uid, 1)).committed


def test_partition_isolating_stores_blocks_commit():
    system, client, uid = build_system(st=("t1", "t2"))
    # Client+servers+namenode on one side; both stores on the other.
    system.network.partition(
        {"c1", "s1", "s2", "s3", "namenode"}, {"t1", "t2"})
    result = system.run_transaction(client, add_work(uid, 1))
    assert not result.committed
    # Nothing was durably changed.
    system.network.heal()
    check = system.run_transaction(client, get_work(uid))
    assert check.value == 100


def test_partition_hiding_one_store_excludes_it():
    system, client, uid = build_system(st=("t1", "t2"),
                                       enable_recovery_managers=False)
    system.network.partition(
        {"c1", "s1", "s2", "s3", "namenode", "t1"}, {"t2"})
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    assert system.db_st(uid) == ["t1"]


def test_active_replication_minority_replica_masked():
    system, client, uid = build_system(ActiveReplication(), st=("t1",))

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.network.partition(
            {"c1", "s1", "s2", "namenode", "t1"}, {"s3"})
        v = yield from txn.invoke(uid, "add", 1)
        return v

    result = system.run_transaction(client, work)
    assert result.committed
    assert result.value == 102


def test_heal_restores_full_function():
    system, client, uid = build_system()
    system.network.partition({"c1"})
    assert not system.run_transaction(client, add_work(uid, 1)).committed
    system.network.heal()
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    assert set(system.store_versions(uid).values()) == {2}
