"""Integration tests for the replicated shard ring.

With ``nameserver_replication > 1`` every group-view entry lives on its
ring arc's preference list, so a crashed shard host must not black-hole
its arc: writes flow through the surviving replicas, reads fail over
down the preference list, and the shard-resync daemon catches the
recovered host up from its peers before it serves again.
"""

import pytest

from repro import DistributedSystem, FaultPlan, SystemConfig
from repro.naming.group_view_db import SERVICE_NAME

from tests.conftest import (
    add_work,
    arm_crash_after_prepare,
    assert_shard_replicas_agree as assert_replicas_agree,
    get_work,
)
from tests.integration.test_sharded_nameserver import build


def test_boot_replicates_entries_across_the_preference_list():
    system, _, uids = build(shards=4, objects=12, nameserver_replication=2)
    for uid in uids:
        replicas = system.shard_router.preference_list(uid, 2)
        assert len(set(replicas)) == 2
        for shard, db in system.db.shards.items():
            assert db.knows(str(uid)) == (shard in replicas)
        assert_replicas_agree(system, uid)


def test_replication_rejects_invalid_configs():
    with pytest.raises(ValueError):
        DistributedSystem(SystemConfig(nameserver_shards=3,
                                       nameserver_replication=0))
    with pytest.raises(ValueError):
        DistributedSystem(SystemConfig(nameserver_shards=2,
                                       nameserver_replication=3))
    with pytest.raises(ValueError):
        DistributedSystem(SystemConfig(nameserver_shards=1,
                                       nameserver_replication=2))


def test_bindings_commit_while_a_shard_host_is_down():
    """The acceptance shape: a crashed shard host must not black-hole
    the UIDs it owns -- their bindings keep committing via replicas."""
    system, (client,), uids = build(shards=3, objects=9,
                                    nameserver_replication=2)
    victim = system.shard_router.shard_for(uids[0])
    owned = [u for u in uids
             if system.shard_router.shard_for(u) == victim]
    assert owned, "seed must give the victim at least one primary arc"
    system.nodes[victim].crash()
    for uid in uids:  # every arc stays writable, victim-owned included
        assert system.run_transaction(client, add_work(uid, 1)).committed
    for uid in owned:  # and readable: reads fail over past the primary
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1


def test_recovered_shard_serves_reads_only_after_resync():
    system, (client,), uids = build(shards=3, objects=6,
                                    sv=("a1", "a2"), st=("b1", "b2"),
                                    nameserver_replication=2)
    victim = system.shard_router.shard_for(uids[0])
    system.nodes[victim].crash()
    # Crash a store host too: the next commits Exclude it from every
    # touched entry's St on the *surviving* replicas -- a durable
    # change the downed shard host misses and must copy on resync.
    system.nodes["b2"].crash()
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed

    system.nodes[victim].recover()
    resyncer = system.shard_resyncers[victim]
    # The boot hook gates the service back out before anything can run.
    assert not system.nodes[victim].rpc.has_service(SERVICE_NAME)
    assert not resyncer.serving
    system.run(until=system.scheduler.now + 30.0)
    assert resyncer.serving
    assert resyncer.resyncs_completed == 1
    assert resyncer.entries_refreshed > 0, \
        "the victim missed writes during its outage and must copy them"
    for uid in uids:
        assert_replicas_agree(system, uid)


def test_sweep_reaches_past_an_equal_version_stale_peer():
    """Two replicas that share the same staleness agree on versions;
    settling on that agreement would wedge them forever.  The sweep
    must consult *every* source and copy from the one strictly ahead."""
    from repro.actions import AtomicAction

    system, (client,), uids = build(shards=3, objects=3,
                                    nameserver_replication=3,
                                    shard_antientropy_interval=3.0)
    uid = uids[0]
    replicas = system.shard_router.preference_list(uid, 3)
    # A committed write that landed only on the LAST replica in
    # preference order (both earlier replicas' RPCs were disowned).
    fresh = system.db.shards[replicas[-1]]
    action = AtomicAction(node="test")
    fresh.increment(action.id.path, "lone-acker", str(uid), ["a1"])
    fresh.commit(action.id.path)

    system.run(until=system.scheduler.now + 12.0)  # a few sweep rounds
    assert_replicas_agree(system, uid, replication=3)
    snapshot = system.db.shards[replicas[0]].get_server_with_uses(
        (0,), str(uid))
    system._release_probe_locks()
    assert dict(snapshot.uses["a1"]) == {"lone-acker": 1}, \
        "the fresh third replica's write must reach the stale pair"


def test_resynced_shard_can_carry_its_arc_alone():
    """After resync the recovered host's data is good enough to be the
    *only* live replica: crash its successor and keep binding."""
    system, (client,), uids = build(shards=3, objects=6,
                                    nameserver_replication=2)
    uid = uids[0]
    primary, successor = system.shard_router.preference_list(uid, 2)

    system.nodes[primary].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes[primary].recover()
    system.run(until=system.scheduler.now + 30.0)
    assert system.shard_resyncers[primary].serving

    system.nodes[successor].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed
    result = system.run_transaction(client, get_work(uid))
    assert result.committed and result.value == 2


def test_faultplan_scripted_rolling_shard_outages():
    """FaultPlan-scripted outages across the ring: every arc keeps one
    live replica at all times, so a closed loop of bindings never
    stalls and the ring heals to full agreement."""
    system, (client,), uids = build(shards=3, objects=6,
                                    nameserver_replication=2,
                                    enable_recovery_managers=False)
    a, b, c = system.shard_hosts
    plan = (FaultPlan()
            .outage(1.0, 8.0, a)
            .outage(12.0, 19.0, b)
            .outage(23.0, 30.0, c))
    assert plan.targets() == {a, b, c}
    system.install_fault_plan(plan)

    def clock_work(uid):
        def work(txn):
            return (yield from txn.invoke(uid, "add", 1))
        return work

    committed = 0
    deadline = 40.0
    rounds = 0
    while system.scheduler.now < deadline:
        for uid in uids:
            result = system.run_transaction(client, clock_work(uid))
            committed += 1 if result.committed else 0
        rounds += 1
    assert committed >= rounds * len(uids) * 0.9, \
        "rolling single-host outages must not dent a replicated ring"
    system.run(until=system.scheduler.now + 30.0)
    for host in (a, b, c):
        assert system.shard_resyncers[host].serving
    for uid in uids:
        assert_replicas_agree(system, uid)


def test_bare_ring_shard_recovery_drops_volatile_state():
    """With replication=1 a crashed shard host has no peers to resync
    from, but the fail-silent contract still holds: its pre-crash lock
    table and provisional (never-decided) writes must not resurrect on
    recovery."""
    system, (client,), uids = build(shards=2, objects=3,
                                    scheme="independent")
    uid = uids[0]
    home = system.shard_router.shard_for(uid)
    home_node = system.nodes[home]
    db = system.db.shards[home]

    fired = arm_crash_after_prepare(system, db, home_node)
    result = system.run_transaction(client, add_work(uid, 1))
    del db.prepare
    assert fired and home_node.crashed
    assert not result.committed, "the lone home's silence dooms the txn"
    assert db.server_db.pending_undo_count > 0, \
        "the crash must strand a prepared-but-undecided write"

    home_node.recover()
    assert db.server_db.pending_undo_count == 0, \
        "recovery must reset the shard's volatile state"
    assert not db.server_db.locks.is_locked(("sv", uid))
    system.run(until=system.scheduler.now + 5.0)
    retry = system.run_transaction(client, add_work(uid, 1))
    assert retry.committed, "the entry must be usable again after recovery"


def test_antientropy_sweep_repairs_divergence_without_a_crash():
    """A replica can go stale without ever crashing (e.g. a queued
    write that timed out at the caller and was presume-aborted); the
    periodic sweep must pull it level with its freshest peer -- and
    only in that direction, never stale-over-fresh."""
    from repro.actions import AtomicAction

    system, (client,), uids = build(shards=3, objects=3,
                                    nameserver_replication=2,
                                    shard_antientropy_interval=3.0)
    uid = uids[0]
    primary, successor = system.shard_router.preference_list(uid, 2)
    # Divergence as a missed write would leave it: a committed
    # Increment applied at the primary only (bumping its entry
    # version), with the successor still at the older version.  (An
    # Sv/St membership divergence would also be repaired, but the
    # include guard patrols membership anyway; counters isolate the
    # sweep's contribution.)
    fresh = system.db.shards[primary]
    action = AtomicAction(node="test")
    fresh.increment(action.id.path, "lost-binder", str(uid), ["a1"])
    fresh.commit(action.id.path)

    def counters_at(shard):
        snapshot = system.db.shards[shard].get_server_with_uses(
            (0,), str(uid))
        system._release_probe_locks()
        return {h: dict(c) for h, c in snapshot.uses.items()}

    assert counters_at(primary)["a1"] == {"lost-binder": 1}
    assert counters_at(successor)["a1"] == {}

    system.run(until=system.scheduler.now + 10.0)  # a few sweep rounds
    assert counters_at(successor)["a1"] == {"lost-binder": 1}, \
        "the sweep must copy the fresher primary copy to the successor"
    assert counters_at(primary)["a1"] == {"lost-binder": 1}, \
        "the stale successor must never overwrite the fresher primary"
    assert_replicas_agree(system, uid)


def test_stale_replica_missing_the_entry_cannot_veto_writes():
    """A replica that missed the define (e.g. via a disowned stray
    write) answers UnknownObject while live and serving.  Its ignorance
    must not outvote the replicas holding the committed entry -- writes
    and reads keep working, and the sweep re-seeds the entry.  (The
    independent scheme matters: its bind Increments actually fan out
    writes to the stale replica.)"""
    system, (client,), uids = build(shards=3, objects=3,
                                    scheme="independent",
                                    nameserver_replication=2,
                                    shard_antientropy_interval=3.0)
    uid = uids[0]
    primary, successor = system.shard_router.preference_list(uid, 2)
    stale = system.db.shards[successor]
    from repro.storage.uid import Uid
    parsed = Uid.parse(str(uid))
    del stale.server_db._entries[parsed]  # simulate the missed define
    del stale.state_db._entries[parsed]

    assert system.run_transaction(client, add_work(uid, 1)).committed, \
        "the fresh primary's acceptance decides, not the stale replica"
    result = system.run_transaction(client, get_work(uid))
    assert result.committed and result.value == 1

    system.run(until=system.scheduler.now + 10.0)  # a few sweep rounds
    assert stale.knows(str(uid)), "the sweep must re-seed the entry"
    assert_replicas_agree(system, uid)


def test_stale_replica_cannot_veto_a_grouped_exclude():
    """Exclude is the one multi-UID write; a stale replica answering
    UnknownObject for its whole shard group must not abort the
    excluding action -- even with the anti-entropy sweep disabled."""
    system, (client,), uids = build(shards=3, objects=3,
                                    sv=("a1", "a2"), st=("b1", "b2"),
                                    nameserver_replication=2,
                                    shard_antientropy_interval=None)
    uid = uids[0]
    primary, successor = system.shard_router.preference_list(uid, 2)
    stale = system.db.shards[successor]
    from repro.storage.uid import Uid
    parsed = Uid.parse(str(uid))
    del stale.server_db._entries[parsed]  # simulate the missed define
    del stale.state_db._entries[parsed]

    # A store-host crash makes the next commit Exclude it from St,
    # which fans the grouped exclude out to the stale replica too.
    system.nodes["b2"].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed, \
        "the stale replica's ignorance must not veto the exclusion"
    view = system.db.shards[primary].get_view((0,), str(uid))
    system._release_probe_locks()
    assert view == ["b1"], "the exclusion must have landed at the primary"


def test_recovery_resync_skips_a_stale_source_for_a_fresh_one():
    """With replication=3, a recovering host whose first source replica
    is itself stale (missing the entry) must keep walking the
    preference list to the replica that holds it."""
    system, (client,), uids = build(shards=3, objects=3,
                                    nameserver_replication=3,
                                    shard_antientropy_interval=None)
    uid = uids[0]
    first, second, third = system.shard_router.preference_list(uid, 3)
    from repro.storage.uid import Uid
    parsed = Uid.parse(str(uid))
    # ``second`` never got the entry; ``first`` crashes and recovers and
    # must copy from ``third`` instead of giving up at ``second``.
    stale = system.db.shards[second]
    del stale.server_db._entries[parsed]
    del stale.state_db._entries[parsed]
    missing = system.db.shards[first]
    del missing.server_db._entries[parsed]
    del missing.state_db._entries[parsed]

    system.nodes[first].crash()
    system.run(until=system.scheduler.now + 1.0)
    system.nodes[first].recover()
    system.run(until=system.scheduler.now + 30.0)
    assert system.shard_resyncers[first].serving
    assert missing.knows(str(uid)), \
        "resync must reach past the stale source to the fresh one"
    assert system.run_transaction(client, add_work(uid, 1)).committed


def test_faultplan_rejects_unknown_targets():
    system, _, _ = build(shards=2, nameserver_replication=2)
    plan = FaultPlan().crash_at(1.0, "no-such-node")
    with pytest.raises(ValueError):
        system.install_fault_plan(plan)
