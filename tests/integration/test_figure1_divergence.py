"""Integration test for figure 1: replica divergence without reliable
ordered group communication, and its absence with it.

The scenario: a sender transmits a message to replica group
GA = {A1, A2} and crashes part-way through delivery, so one member
receives it and the other does not -- their subsequent behaviour
diverges (paper section 2.3).  We reproduce it on the invocation path
of active replication: the client multicasts a write invocation to the
replica group and crashes mid-send.

- With the **naive** multicast (a sequence of staggered unicasts), A1
  applies the write and A2 never sees it: divergent replica states.
- With the **reliable ordered** multicast, the send is a single submit
  to the group's sequencer and every received message is relayed, so
  the surviving replicas are always mutually identical.
"""

from repro import ActiveReplication, DistributedSystem, SystemConfig

from tests.conftest import Counter


def replica_states(system, uid, hosts):
    states = {}
    for host in hosts:
        server_host = system.nodes[host].rpc.service("servers")
        if server_host is not None and server_host.has_server(str(uid)):
            buffer, _version = server_host.get_state(str(uid))
            obj = Counter.deserialise(buffer)
            states[host] = obj.value
    return states


def run_partial_delivery(reliable: bool, seed: int = 7):
    system = DistributedSystem(SystemConfig(
        seed=seed, reliable_multicast=reliable))
    system.registry.register(Counter)
    for host in ("a1", "a2"):
        system.add_node(host, server=True)
    system.add_node("t1", store=True)
    client = system.add_client("c1", policy=ActiveReplication())
    # Stagger the CLIENT's unicast emissions so a crash can split them.
    system.nodes["c1"].mcast.stagger = 0.01
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=["a1", "a2"], st_hosts=["t1"])

    def work(txn):
        yield from txn.invoke(uid, "add", 1)  # activate + first write
        # Second invocation: crash the client between its staggered
        # emissions (naive) / just after its single submit (reliable).
        system.scheduler.schedule(0.005, system.nodes["c1"].crash)
        yield from txn.invoke(uid, "add", 1)

    client.transaction(work)
    # Observe replica states BEFORE the server-side janitor (2s period)
    # detects the dead client and aborts the orphaned action.
    system.run(until=1.0)
    return system, uid


def test_naive_multicast_diverges():
    system, uid = run_partial_delivery(reliable=False)
    states = replica_states(system, uid, ["a1", "a2"])
    # a1 received the second invocation before the client died; a2 did not.
    assert states == {"a1": 2, "a2": 1}
    # Bonus: the orphan-action janitor eventually aborts the dead
    # client's action at a1, rolling the divergent write back -- the
    # cleanup protocol converges the group (on the PRE-action state).
    system.run(until=10.0)
    healed = replica_states(system, uid, ["a1", "a2"])
    assert healed["a1"] == healed["a2"]


def test_reliable_multicast_keeps_replicas_identical():
    system, uid = run_partial_delivery(reliable=True)
    states = replica_states(system, uid, ["a1", "a2"])
    assert states["a1"] == states["a2"]


def test_reliable_multicast_identical_order_under_concurrency():
    """Writes from two clients reach all replicas in the same order."""
    system = DistributedSystem(SystemConfig(seed=11, reliable_multicast=True))
    system.registry.register(Counter)
    for host in ("a1", "a2", "a3"):
        system.add_node(host, server=True)
    system.add_node("t1", store=True)
    c1 = system.add_client("c1", policy=ActiveReplication())
    c2 = system.add_client("c2", policy=ActiveReplication())
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=["a1", "a2", "a3"], st_hosts=["t1"])

    from tests.conftest import add_work
    for i in range(4):
        client = c1 if i % 2 == 0 else c2
        assert system.run_transaction(client, add_work(uid, 1)).committed

    states = replica_states(system, uid, ["a1", "a2", "a3"])
    assert set(states.values()) == {4}
