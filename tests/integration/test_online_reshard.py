"""Integration tests for online resharding.

The ReshardManager must grow and shrink the live ring with no restart
and no correctness cost: dual-ownership routing keeps every binding
committing while the moving arcs are copied, the epoch flip is atomic,
and the old owners' garbage is collected -- all while crashes,
concurrent membership changes, and live traffic do their worst.
"""

import pytest

from repro import DistributedSystem, SystemConfig
from repro.naming import ReshardInProgress
from repro.naming.group_view_db import SERVICE_NAME

from tests.conftest import (
    add_work,
    assert_shard_replicas_agree,
    get_work,
)
from tests.integration.test_sharded_nameserver import build


def assert_placement_matches_ring(system, uids, replication=2):
    """Entries live exactly on their (current-ring) preference lists."""
    for uid in uids:
        owners = set(system.shard_router.preference_list(uid, replication))
        for shard, db in system.db.shards.items():
            assert db.knows(str(uid)) == (shard in owners), \
                f"{uid} misplaced at {shard}: owners {sorted(owners)}"


def test_scale_out_moves_arcs_flips_and_garbage_collects():
    system, (client,), uids = build(shards=2, objects=12,
                                    nameserver_replication=2)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed

    process = system.add_shard_host()
    outcome = system.run_until(process, timeout=120.0)

    assert system.shard_router.nodes == ["namenode0", "namenode1",
                                         "namenode2"]
    assert system.shard_router.epoch == 1
    assert system.shard_router.transition is None
    assert outcome["flipped_at"] is not None
    assert outcome["done_at"] >= outcome["flipped_at"]
    assert outcome["entries_forgotten"] > 0, \
        "a grown ring must have moved (and GC'd) at least one arc"
    assert_placement_matches_ring(system, uids)
    for uid in uids:
        assert_shard_replicas_agree(system, uid)
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1
        assert system.run_transaction(client, add_work(uid, 1)).committed


def test_scale_out_commits_bindings_throughout_the_migration():
    """Dual-ownership routing is the point: no write barrier, no abort
    window, while arcs move."""
    system, (client,), uids = build(shards=2, objects=8,
                                    nameserver_replication=2)
    process = system.add_shard_host()
    rounds = 0
    while not process.done:
        for uid in uids:
            assert system.run_transaction(client, add_work(uid, 1)).committed
        rounds += 1
        assert rounds < 200, "migration must finish under live traffic"
    system.run_until(process, timeout=60.0)
    for uid in uids:
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == rounds
    assert_placement_matches_ring(system, uids)


def test_drain_retires_the_host_and_keeps_its_arcs_served():
    system, (client,), uids = build(shards=3, objects=9,
                                    nameserver_replication=2)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
    victim = system.shard_router.nodes[-1]
    victim_db = system.db.shards[victim]

    process = system.drain_shard_host(victim)
    outcome = system.run_until(process, timeout=120.0)

    assert victim not in system.shard_router.nodes
    assert victim in system.drained_shard_hosts
    assert outcome["removed"] == [victim]
    assert victim_db.list_uids() == [], \
        "a drained host must end fully garbage-collected"
    assert not system.nodes[victim].rpc.has_service(SERVICE_NAME), \
        "a drained host must stop serving the naming RPC surface"
    assert victim not in system.db.shards
    assert_placement_matches_ring(system, uids)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 2


def test_drained_host_recovery_does_not_resurrect_the_service():
    system, (client,), uids = build(shards=3, objects=6,
                                    nameserver_replication=2)
    victim = system.shard_router.nodes[-1]
    system.run_until(system.drain_shard_host(victim), timeout=120.0)

    system.nodes[victim].crash()
    system.run(until=system.scheduler.now + 1.0)
    system.nodes[victim].recover()
    system.run(until=system.scheduler.now + 30.0)
    assert not system.nodes[victim].rpc.has_service(SERVICE_NAME), \
        "retirement must survive a crash/recovery cycle"
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed


def test_drain_refuses_to_go_below_replication():
    system, _, _ = build(shards=2, nameserver_replication=2)
    with pytest.raises(ValueError):
        system.run_until(system.drain_shard_host("namenode1"), timeout=30.0)


def test_concurrent_membership_changes_are_refused():
    system, (client,), uids = build(shards=2, objects=6,
                                    nameserver_replication=2)
    first = system.add_shard_host()
    with pytest.raises(ValueError):
        system.add_shard_host()  # eager refusal while the first migrates
    system.run_until(first, timeout=120.0)
    # After the epoch completes the ring is elastic again.
    second = system.add_shard_host()
    system.run_until(second, timeout=120.0)
    assert len(system.shard_router.nodes) == 4
    assert_placement_matches_ring(system, uids)


def test_reshard_manager_itself_rejects_overlapping_epochs():
    system, _, _ = build(shards=2, objects=3, nameserver_replication=2)
    process = system.add_shard_host()
    with pytest.raises(ReshardInProgress):
        system.run_until(
            system.scheduler.spawn(system.reshard.grow("late-host"),
                                   name="late"), timeout=30.0)
    system.run_until(process, timeout=120.0)


def test_migration_defers_while_a_source_host_is_down():
    """A moving arc with an unreachable old owner must hold the epoch
    open -- the dark host may hold a committed write nobody else took
    -- and complete once it recovers."""
    system, (client,), uids = build(shards=2, objects=8,
                                    nameserver_replication=2)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
    victim = system.shard_router.nodes[0]
    system.nodes[victim].crash()

    process = system.add_shard_host()
    system.run(until=system.scheduler.now + 10.0)
    assert not process.done, \
        "the migration must wait for the dark source, not flip past it"
    assert system.shard_router.transition is not None

    system.nodes[victim].recover()
    outcome = system.run_until(process, timeout=240.0)
    assert outcome["flipped_at"] is not None
    assert_placement_matches_ring(system, uids)
    for uid in uids:
        assert_shard_replicas_agree(system, uid)
        assert system.run_transaction(client, add_work(uid, 1)).committed


def test_new_host_crash_during_migration_heals():
    """Crashing the incoming owner mid-copy defers the epoch; its
    recovery (gated by its own resync manager) lets the migration
    finish, and the flip still lands."""
    from repro import FaultPlan

    system, (client,), uids = build(shards=3, objects=9,
                                    nameserver_replication=2)
    process = system.add_shard_host("namenode3")
    # Crash the incoming host shortly into the migration, recover later.
    system.install_fault_plan(
        FaultPlan().outage(system.scheduler.now + 0.2,
                           system.scheduler.now + 5.0, "namenode3"))
    outcome = system.run_until(process, timeout=240.0)
    assert outcome["flipped_at"] is not None
    assert "namenode3" in system.shard_router.nodes
    assert_placement_matches_ring(system, uids)
    for uid in uids:
        assert_shard_replicas_agree(system, uid)
        assert system.run_transaction(client, add_work(uid, 1)).committed


def test_sweep_garbage_collects_an_install_that_raced_the_flip():
    """An install computed against the pre-flip ring can land on an
    ex-owner after the migration's GC round; the anti-entropy sweep is
    the standing collector that forgets it -- but never while a
    transition is staged (the host may hold freshly-copied arcs it
    does not own under the live ring yet)."""
    from repro.naming.shard_router import RingTransition

    system, (client,), uids = build(shards=3, objects=6,
                                    nameserver_replication=2,
                                    shard_antientropy_interval=2.0)
    uid = uids[0]
    owners = system.shard_router.preference_list(uid, 2)
    outsider = [n for n in system.shard_hosts if n not in owners][0]
    foreign = system.db.shards[outsider]

    # Plant the raced install: a committed copy on a non-owner.
    assert foreign.guarded_install_entry(
        str(uid), ["a1", "a2"], {"a1": {}, "a2": {}}, ["a1", "a2"], (1, 1))
    assert foreign.knows(str(uid))

    # While a transition is staged the sweep must leave it alone...
    target = system.shard_router.clone()
    system.shard_router.transition = RingTransition(target, epoch=99)
    system.run(until=system.scheduler.now + 6.0)
    assert foreign.knows(str(uid)), \
        "mid-transition the sweep must not touch unowned local arcs"

    # ...and once the ring is stable again, sweep it out.
    system.shard_router.transition = None
    system.run(until=system.scheduler.now + 6.0)
    assert not foreign.knows(str(uid)), \
        "the sweep must collect the leftover arc"
    assert system.run_transaction(client, add_work(uid, 1)).committed


def test_resharding_requires_a_sharded_deployment():
    system = DistributedSystem(SystemConfig(seed=7))
    with pytest.raises(ValueError):
        system.add_shard_host()
    with pytest.raises(ValueError):
        system.drain_shard_host("namenode")
    with pytest.raises(ValueError):
        system.enable_autoscaler()


def test_autoscaler_grows_the_ring_under_load():
    """The end-to-end elasticity loop: per-shard op rates over the
    threshold trigger a real migration epoch."""
    system, (client,), uids = build(shards=2, objects=8,
                                    nameserver_replication=2,
                                    scheme="independent")
    system.enable_autoscaler(ops_per_shard=5.0, interval=1.0, max_shards=3)
    deadline = 60.0
    while (len(system.shard_router.nodes) < 3
           and system.scheduler.now < deadline):
        for uid in uids:
            system.run_transaction(client, add_work(uid, 1))
    system.run(until=system.scheduler.now + 30.0)
    assert len(system.shard_router.nodes) == 3, \
        "sustained over-threshold load must grow the ring"
    assert system.autoscaler.scale_ups_triggered >= 1
    assert not system.reshard.active
    assert_placement_matches_ring(system, uids)


def test_plan_rebalance_moves_two_hosts_in_one_epoch():
    """The multi-host plan: 2->4 in a single staged transition, one
    copy pipeline, one atomic flip -- not one epoch per host."""
    system, (client,), uids = build(shards=2, objects=12,
                                    nameserver_replication=2)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed

    process = system.plan_rebalance(add=2)
    outcome = system.run_until(process, timeout=240.0)

    assert len(system.shard_router.nodes) == 4
    assert outcome["added"] == ["namenode2", "namenode3"]
    assert outcome["flipped_at"] is not None
    assert system.reshard.epochs_completed == 1, \
        "a plan is one migration epoch, however many hosts it moves"
    assert system.shard_router.transition is None
    assert_placement_matches_ring(system, uids)
    for uid in uids:
        assert_shard_replicas_agree(system, uid)
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1
        assert system.run_transaction(client, add_work(uid, 1)).committed


def test_plan_rebalance_commits_bindings_throughout():
    system, (client,), uids = build(shards=2, objects=8,
                                    nameserver_replication=2)
    process = system.plan_rebalance(add=2)
    rounds = 0
    while not process.done:
        for uid in uids:
            assert system.run_transaction(client, add_work(uid, 1)).committed
        rounds += 1
        assert rounds < 200, "the plan must finish under live traffic"
    system.run_until(process, timeout=60.0)
    for uid in uids:
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == rounds
    assert_placement_matches_ring(system, uids)


def test_plan_rebalance_swaps_hosts_in_one_epoch():
    """A plan may add and remove in the same transition: the retiring
    host's arcs land directly on the replacements."""
    system, (client,), uids = build(shards=3, objects=9,
                                    nameserver_replication=2)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
    victim = system.shard_router.nodes[-1]
    process = system.plan_rebalance(add=["fresh-shard"], remove=[victim])
    outcome = system.run_until(process, timeout=240.0)

    assert victim not in system.shard_router.nodes
    assert "fresh-shard" in system.shard_router.nodes
    assert outcome["removed"] == [victim]
    assert victim in system.drained_shard_hosts
    assert system.db.shards.get(victim) is None
    assert not system.nodes[victim].rpc.has_service(SERVICE_NAME)
    assert_placement_matches_ring(system, uids)
    for uid in uids:
        assert_shard_replicas_agree(system, uid)
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1


def test_plan_rebalance_validates_its_inputs():
    system, _, _ = build(shards=2, nameserver_replication=2)
    with pytest.raises(ValueError):
        system.plan_rebalance()  # an empty plan moves nothing
    with pytest.raises(ValueError):
        system.plan_rebalance(remove=["not-a-shard"])
    with pytest.raises(ValueError):
        system.plan_rebalance(remove=["namenode1"])  # below replication
    with pytest.raises(ValueError):
        system.reshard.plan_rebalance(add=["x"], remove=["x"])


def test_rejected_plan_boots_no_orphan_hosts():
    """Validation must run before anything is spent on the plan: a
    rejected plan must not leave freshly-booted shard hosts serving
    but never on the ring."""
    system, _, _ = build(shards=2, nameserver_replication=2)
    before_nodes = set(system.nodes)
    before_shards = set(system.db.shards)
    with pytest.raises(ValueError):
        # Adds one, removes both: survivors < replication -> rejected.
        system.plan_rebalance(add=1, remove=["namenode0", "namenode1"])
    assert set(system.nodes) == before_nodes, \
        "a rejected plan must not boot new nodes"
    assert set(system.db.shards) == before_shards
    assert not system.reshard.active
    # The ring is still elastic afterwards (nothing half-claimed).
    process = system.add_shard_host()
    system.run_until(process, timeout=120.0)
    assert len(system.shard_router.nodes) == 3


def test_migration_under_traffic_requires_no_settle_interval():
    """The fence replaces the settle window: a scale-out under load
    with in-flight pre-stage writes still loses nothing -- and the
    manager simply has no settle knob any more."""
    assert not hasattr(system_reshard_attrs(), "settle")
    system, (client,), uids = build(shards=2, objects=6,
                                    nameserver_replication=2,
                                    service_time=0.004)
    process = system.add_shard_host()
    while not process.done:
        for uid in uids:
            assert system.run_transaction(client, add_work(uid, 1)).committed
    system.run_until(process, timeout=60.0)
    assert_placement_matches_ring(system, uids)


def system_reshard_attrs():
    system, _, _ = build(shards=2, nameserver_replication=2)
    return system.reshard


def test_autoscaler_drains_an_idle_ring():
    """The scale-down policy end-to-end: per-shard op rates sitting
    under the low watermark for a full cooldown drain the least-loaded
    host, and never below min_shards."""
    system, (client,), uids = build(shards=3, objects=6,
                                    nameserver_replication=2,
                                    scheme="independent")
    system.enable_autoscaler(ops_per_shard=1000.0, low_ops_per_shard=5.0,
                             interval=1.0, min_shards=2, down_after=3)
    # No traffic at all: every sample is quiet.
    system.run(until=system.scheduler.now + 60.0)
    assert system.autoscaler.scale_downs_triggered >= 1
    assert len(system.shard_router.nodes) == 2, \
        "an idle ring must drain to the floor and stop there"
    assert not system.reshard.active
    system.run(until=system.scheduler.now + 30.0)
    assert len(system.shard_router.nodes) == 2, \
        "min_shards is a floor, not a suggestion"
    assert_placement_matches_ring(system, uids)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
