"""Long-haul stochastic churn over the shard ring.

The ROADMAP's standing experiment: drive
:class:`~repro.sim.failures.StochasticFaultInjector` against
``system.shard_hosts`` -- random crash/recover cycles with no script
-- while a closed loop of bindings runs, and (the hard part) while an
online reshard migrates arcs through the middle of the chaos.  The
whole machinery has to compose: replicated writes skip dark replicas,
reads fail over, resync gates recovered hosts, read-repair patches
residual staleness, and the migration epoch defers around outages
instead of flipping past them.

The invariants at the end of the haul:

- **no binding lost** -- every committed counter increment is in the
  final value (and nothing beyond them: no aborted effect survived);
- **the ring converges** -- every shard host serves again and every
  arc's replicas agree entry-for-entry;
- **the reshard completed** -- the ring grew by one host whose arcs
  are placed exactly as the new ring dictates.
"""

import pytest

from repro.naming.group_view_db import SERVICE_NAME
from repro.net.errors import StaleRingEpoch

from tests.conftest import add_work, assert_shard_replicas_agree, get_work
from tests.integration.test_sharded_nameserver import build

# Long-haul stochastic tests: excluded from the default tier-1 run
# (``-m "not slow"``); CI's full-suite job still runs them.
pytestmark = pytest.mark.slow


def assert_placement_matches_ring(system, uids, replication):
    for uid in uids:
        owners = set(system.shard_router.preference_list(uid, replication))
        for shard, db in system.db.shards.items():
            assert db.knows(str(uid)) == (shard in owners), \
                f"{uid} misplaced at {shard}: owners {sorted(owners)}"


def test_stochastic_shard_churn_with_a_concurrent_reshard():
    replication = 3
    system, (client,), uids = build(shards=4, objects=8,
                                    scheme="independent",
                                    nameserver_replication=replication,
                                    shard_antientropy_interval=2.0,
                                    enable_recovery_managers=False,
                                    rpc_timeout=0.3, seed=11)
    # Churn every original shard host: exponential crashes, sub-second
    # repairs, for the first 25 simulated seconds.  (The host added
    # mid-run is deliberately not a target: the injector snapshot
    # predates it, exactly like an operator pointing chaos tooling at
    # the old fleet.)  The rates are tuned so the ring stays mostly
    # available -- harsher churn just measures blackout arcs, not the
    # machinery under test.
    injector = system.stochastic_faults(system.shard_hosts, mttf=12.0,
                                        mttr=0.8, stop_after=25.0)

    committed = {str(uid): 0 for uid in uids}
    migration = None
    pre_flip_view = None
    while system.scheduler.now < 30.0:
        for uid in uids:
            result = system.run_transaction(client, add_work(uid, 1),
                                            timeout=30.0)
            if result.committed:
                committed[str(uid)] += 1
        if migration is None and system.scheduler.now >= 10.0:
            # Grow the ring in the middle of the churn window -- but
            # first capture the view a laggard client would still hold.
            pre_flip_view = system.shard_router.view()
            migration = system.add_shard_host()

    assert injector.crashes_injected > 0, "the haul must actually churn"
    assert migration is not None
    outcome = system.run_until(migration, timeout=600.0)
    assert outcome["flipped_at"] is not None
    assert len(system.shard_router.nodes) == 5

    # Let every recovery resync and anti-entropy sweep play out.
    system.run(until=system.scheduler.now + 60.0)
    for host, resyncer in system.shard_resyncers.items():
        assert resyncer.serving, f"{host} must be back in the serving path"

    total = sum(committed.values())
    assert total > 0, "the haul must commit real work through the churn"
    for uid in uids:
        result = system.run_transaction(client, get_work(uid), timeout=30.0)
        assert result.committed, f"final read of {uid} failed: {result.reason}"
        assert result.value == committed[str(uid)], \
            (f"{uid}: committed {committed[str(uid)]} increments but the "
             f"counter reads {result.value} -- a binding was "
             f"{'lost' if result.value < committed[str(uid)] else 'invented'}")

    assert_placement_matches_ring(system, uids, replication)
    for uid in uids:
        assert_shard_replicas_agree(system, uid, replication=replication)

    # The fencing satellite, asserted inside the churn harness: the
    # pre-flip view's token is dead at every serving shard -- a client
    # that somehow held it through the whole haul cannot write to (or
    # read from) anyone; it must refresh first.
    assert pre_flip_view is not None
    assert pre_flip_view.epoch != system.shard_router.fence_epoch
    caller = client.node.rpc
    for shard in system.shard_router.nodes:
        if not system.nodes[shard].rpc.has_service(SERVICE_NAME):
            continue
        call = caller.call(shard, SERVICE_NAME, "ping",
                           ring_epoch=pre_flip_view.epoch)
        with pytest.raises(StaleRingEpoch):
            system.scheduler.run_until_settled(call)


def test_stochastic_churn_without_resharding_converges():
    """The baseline haul: churn alone (no membership change) must also
    end with every replica converged -- the regression guard for the
    resync/anti-entropy/read-repair stack under random faults."""
    replication = 2
    system, (client,), uids = build(shards=3, objects=6,
                                    scheme="independent",
                                    nameserver_replication=replication,
                                    shard_antientropy_interval=2.0,
                                    enable_recovery_managers=False,
                                    rpc_timeout=0.3, seed=23)
    injector = system.stochastic_faults(system.shard_hosts, mttf=5.0,
                                        mttr=1.0, stop_after=25.0)
    committed = {str(uid): 0 for uid in uids}
    while system.scheduler.now < 30.0:
        for uid in uids:
            result = system.run_transaction(client, add_work(uid, 1),
                                            timeout=30.0)
            if result.committed:
                committed[str(uid)] += 1

    assert injector.crashes_injected > 0
    system.run(until=system.scheduler.now + 60.0)
    for host, resyncer in system.shard_resyncers.items():
        assert resyncer.serving, f"{host} must be back in the serving path"
    for uid in uids:
        result = system.run_transaction(client, get_work(uid), timeout=30.0)
        assert result.committed and result.value == committed[str(uid)], \
            (uid, result.value, committed[str(uid)])
        assert_shard_replicas_agree(system, uid, replication=replication)
