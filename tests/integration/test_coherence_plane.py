"""The write-hot coherence plane, end to end.

A writer hammers one entry's group view while a crowd of readers binds
through their caches.  The detector must flip the entry to push mode,
the readers must register as lessees and join the owner's multicast
group, and every subsequent committed write must arrive as a pushed
eviction -- all without a single ledger violation, because a pushed
invalidation only ever *shrinks* staleness below the lease bound.

The fault-path tests exercise the two hard transitions: an owner crash
(volatile registry and sequencer numbering; lessees must detect the
restart and rejoin fresh) and a reshard epoch flip (registry and
detector state handed over to the new owner, who keeps the entry in
push mode for its next readers).
"""

from tests.conftest import get_work
from tests.integration.test_leased_read_churn import audit_ledgers
from tests.integration.test_sharded_nameserver import build

import pytest

LEASE = 0.5


def coherence_build(**kwargs):
    defaults = dict(
        shards=2, objects=4, clients=3, scheme="standard",
        nameserver_replication=2, nameserver_lease=LEASE,
        nameserver_cache_ledger=True, nameserver_push_invalidation=True,
        nameserver_renewal=True, nameserver_hot_write_rate=1.0,
        dedicated_sync_nic=True, enable_recovery_managers=False)
    defaults.update(kwargs)
    return build(**defaults)


def churn_view(uid):
    """A transaction that mutates the entry's group view (a real
    naming write: excluding and re-including a server bumps the entry's
    versions, which is what the detector and the pushes key off)."""
    def work(txn):
        yield from txn._ctx.db.exclude(txn.action, [(uid, ["a2"])])
        yield from txn._ctx.db.include(txn.action, uid, "a2")
        return True
    return work


def counter_sum(system, suffix):
    return sum(value for name, value in system.metrics.snapshot().items()
               if name.endswith(suffix) and isinstance(value, int))


def drive_rounds(system, runtimes, hot, uids, rounds):
    """One writer churning the hot entry, everyone reading everything."""
    writer = runtimes[0]
    committed = 0
    for _ in range(rounds):
        if system.run_transaction(writer, churn_view(hot),
                                  timeout=30.0).committed:
            committed += 1
        for runtime in runtimes:
            for uid in uids:
                result = system.run_transaction(runtime, get_work(uid),
                                                timeout=30.0)
                assert result.committed and result.value == 0
    return committed


@pytest.mark.parametrize("two_planes", [True, False],
                         ids=["dedicated-sync-nic", "single-plane"])
def test_write_hot_entry_flips_to_push_and_writes_evict(two_planes):
    system, runtimes, uids = coherence_build(dedicated_sync_nic=two_planes)
    hot, cold = uids[0], uids[1]
    committed = drive_rounds(system, runtimes, hot, uids, rounds=10)
    assert committed > 5

    owner = system.shard_router.shard_for(hot)
    host = system.coherence_hosts[owner]
    # The detector flipped the hammered entry -- and only it -- to push.
    assert host.mode_of(str(hot)) == "push"
    cold_owner = system.coherence_hosts[system.shard_router.shard_for(cold)]
    assert cold_owner.mode_of(str(cold)) == "pull"
    # The readers registered as lessees and their caches carry the mode.
    assert host.registry.lessees(str(hot)) != []
    modes = {cache.peek(str(hot)).mode
             for cache in system.entry_caches.values()
             if cache.peek(str(hot)) is not None}
    assert "push" in modes
    # Committed writes were pushed, and the cohort applied them.
    assert counter_sum(system, "coherence.pushes_sent") > 0
    assert counter_sum(system, "coherence.pushes_applied") > 0

    # One more committed write must evict every lessee's copy outright.
    before = counter_sum(system, "coherence.pushes_applied")
    assert system.run_transaction(runtimes[0], churn_view(hot),
                                  timeout=30.0).committed
    system.run(until=system.scheduler.now + 0.5)
    assert counter_sum(system, "coherence.pushes_applied") > before
    assert all(cache.peek(str(hot)) is None
               for cache in system.entry_caches.values())

    assert audit_ledgers(system) > 0


def test_renewal_extends_pull_entries_in_place():
    # Renewal alone (no push plane): validation probes that match the
    # cached versions extend the lease instead of re-snapshotting.
    system, runtimes, uids = build(
        shards=2, objects=3, clients=2, scheme="standard",
        nameserver_replication=2, nameserver_lease=LEASE,
        nameserver_cache_ledger=True, nameserver_renewal=True,
        enable_recovery_managers=False)
    for _ in range(8):
        for runtime in runtimes:
            for uid in uids:
                assert system.run_transaction(runtime, get_work(uid),
                                              timeout=30.0).committed
        system.run(until=system.scheduler.now + LEASE * 0.8)
    assert counter_sum(system, "entry_cache.renewed") > 0
    assert audit_ledgers(system) > 0


def test_owner_crash_resets_the_plane_and_lessees_reattach():
    # A lower flip threshold: the post-recovery rounds run against cold
    # caches (every pre-crash entry aged out), so the writer's gap is
    # wider than in the warmed steady state.
    system, runtimes, uids = coherence_build(nameserver_hot_write_rate=0.3)
    hot = uids[0]
    drive_rounds(system, runtimes, hot, uids, rounds=8)
    owner = system.shard_router.shard_for(hot)
    host = system.coherence_hosts[owner]
    assert host.registry.lessees(str(hot)) != []
    applied_before = counter_sum(system, "coherence.pushes_applied")

    # The owner dies: registry, detector, and the sequencer numbering
    # are volatile, so the boot hook reinstalls everything empty.
    system.nodes[owner].crash()
    # Reads keep working through the surviving replica (pull fallback:
    # a dark owner fails the registration, never the read).
    for runtime in runtimes:
        result = system.run_transaction(runtime, get_work(hot), timeout=30.0)
        assert result.committed and result.value == 0
    system.nodes[owner].recover()
    system.run(until=system.scheduler.now + 1.0)
    assert len(host.registry) == 0, "recovery must come up empty"

    # The crowd re-heats the entry; lessees re-register against the
    # restarted sequencer (from_seq went backwards -> rejoin fresh) and
    # pushes flow again.
    drive_rounds(system, runtimes, hot, uids, rounds=8)
    assert host.registry.lessees(str(hot)) != []
    assert counter_sum(system, "coherence.pushes_applied") > applied_before
    assert audit_ledgers(system) > 0


def test_reshard_flip_hands_over_registry_and_detector():
    system, runtimes, uids = coherence_build(
        objects=8, nameserver_hot_write_rate=0.2)
    hot = uids[0]
    owners_before = {str(uid): system.shard_router.shard_for(uid)
                     for uid in uids}
    # Heat the hot entry and seed detector state on every entry (every
    # committed write feeds the owner's detector).
    writer = runtimes[0]
    for uid in uids[1:]:
        assert system.run_transaction(writer, churn_view(uid),
                                      timeout=30.0).committed
    drive_rounds(system, runtimes, hot, uids, rounds=6)
    old_owner = system.shard_router.shard_for(hot)
    assert system.coherence_hosts[old_owner].mode_of(str(hot)) == "push"

    epoch_before = system.shard_router.fence_epoch
    migration = system.add_shard_host()
    outcome = system.run_until(migration, timeout=300.0)
    assert outcome["flipped_at"] is not None
    assert system.shard_router.fence_epoch > epoch_before
    assert outcome.get("coherence_handovers", 0) > 0, \
        "the drain must hand the coherence state to the new owners"

    moved = [uid for uid in uids
             if system.shard_router.shard_for(uid) != owners_before[str(uid)]]
    assert moved, "the ring grew; some primaries must have moved"
    # The handed-over detector state survived the flip: the new owner
    # already knows the moved entries' write rates...
    for uid in moved:
        new_owner = system.coherence_hosts[system.shard_router.shard_for(uid)]
        assert new_owner.detector.effective_rate(str(uid)) > 0.0
    # ...so post-flip traffic re-heats and re-registers against the new
    # owner without a cold start, and the bounds all hold.
    drive_rounds(system, runtimes, hot, uids, rounds=6)
    live_owner = system.shard_router.shard_for(hot)
    live = system.coherence_hosts[live_owner]
    assert live.mode_of(str(hot)) == "push"
    assert live.registry.lessees(str(hot)) != []
    assert audit_ledgers(system) > 0
    fenced = sum(cache.fenced for cache in system.entry_caches.values())
    assert fenced > 0, "the flip must fence pre-change entries"
