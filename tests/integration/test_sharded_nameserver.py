"""Integration tests for the sharded name service.

The tentpole guarantee: partitioning the group-view database across a
consistent-hash ring of store hosts changes *where* an entry lives,
never *how* it behaves -- all three binding schemes, the figure-2/5
abort rules, recovery, and the cleanup daemon work unchanged against
``nameserver_shards > 1``.
"""

import pytest

from repro import (
    ActiveReplication,
    DistributedSystem,
    SingleCopyPassive,
    SystemConfig,
)
from repro.naming import ShardedGroupViewDatabase

from tests.conftest import (
    Counter,
    add_work,
    arm_crash_after_prepare,
    assert_shard_replicas_agree,
    get_work,
)

SCHEMES = ["standard", "independent", "nested_top_level"]


def build(shards=3, sv=("a1", "a2"), st=("a1", "a2"), scheme="standard",
          policy=None, objects=5, clients=1, seed=7, **config_kwargs):
    system = DistributedSystem(SystemConfig(
        seed=seed, nameserver_shards=shards, binding_scheme=scheme,
        **config_kwargs))
    system.registry.register(Counter)
    for host in dict.fromkeys(list(sv) + list(st)):
        system.add_node(host, server=host in sv, store=host in st)
    runtimes = [system.add_client(f"c{i}", policy=policy or SingleCopyPassive())
                for i in range(clients)]
    uids = [system.create_object(Counter(system.new_uid(), value=0),
                                 sv_hosts=list(sv), st_hosts=list(st))
            for _ in range(objects)]
    return system, runtimes, uids


def test_boot_spreads_entries_over_the_ring():
    system, _, uids = build(shards=3, objects=12)
    assert isinstance(system.db, ShardedGroupViewDatabase)
    spread = system.shard_router.spread(uids)
    assert sum(spread.values()) == 12
    assert sum(1 for count in spread.values() if count > 0) >= 2
    for uid in uids:  # the facade and the ring agree on placement
        shard = system.shard_router.shard_for(uid)
        assert system.db.shards[shard].knows(str(uid))
        for other, db in system.db.shards.items():
            if other != shard:
                assert not db.knows(str(uid))


@pytest.mark.parametrize("scheme", SCHEMES)
def test_all_schemes_commit_against_the_ring(scheme):
    system, (client,), uids = build(shards=3, scheme=scheme)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
    for uid in uids:
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1


@pytest.mark.parametrize("scheme", SCHEMES)
def test_one_transaction_spanning_many_shards(scheme):
    """A txn touching objects on different shards 2PCs with each."""
    system, (client,), uids = build(shards=4, objects=8, scheme=scheme)

    def work(txn):
        total = 0
        for uid in uids:
            total = yield from txn.invoke(uid, "add", 1)
        return total

    assert system.run_transaction(client, work).committed
    for uid in uids:
        assert system.run_transaction(client, get_work(uid)).value == 1


def test_fig2_abort_rules_survive_sharding():
    system, (client,), uids = build(shards=3, sv=("alpha",), st=("beta",),
                                    objects=1)
    assert system.run_transaction(client, add_work(uids[0], 1)).committed
    system.nodes["alpha"].crash()
    assert not system.run_transaction(client, add_work(uids[0], 1)).committed


def test_fig5_rolling_failures_survive_sharding():
    system, (client,), uids = build(shards=3, sv=("a1", "a2"),
                                    st=("b1", "b2"), objects=1)
    uid = uids[0]
    assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes["a1"].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes["b1"].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed
    assert system.run_transaction(client, get_work(uid)).value == 3


def test_independent_scheme_repairs_sv_on_the_owning_shard():
    system, (client,), uids = build(shards=3, sv=("s1", "s2", "s3"),
                                    st=("t1",), scheme="independent",
                                    objects=3,
                                    enable_recovery_managers=False)
    system.nodes["s1"].crash()
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
        assert "s1" not in system.db_sv(uid)


def test_store_recovery_reincludes_through_the_ring():
    system, (client,), uids = build(shards=2, sv=("a1", "a2"),
                                    st=("b1", "b2"), objects=2)
    uid = uids[0]
    assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes["b1"].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed
    assert system.db_st(uid) == ["b2"]
    system.nodes["b1"].recover()
    system.run(until=system.scheduler.now + 30.0)
    assert sorted(system.db_st(uid)) == ["b1", "b2"]


def test_per_shard_cleaners_purge_crashed_clients():
    system, runtimes, uids = build(
        shards=3, sv=("s1", "s2"), st=("t1",), scheme="independent",
        objects=6, clients=1, enable_cleaner=True, cleaner_interval=2.0)
    assert len(system.cleaners) == 3
    client = runtimes[0]

    def work(txn):
        for uid in uids:
            yield from txn.invoke(uid, "add", 1)
        system.nodes[client.node.name].crash()  # die mid-action
        yield from txn.invoke(uids[0], "add", 1)

    client.transaction(work)
    system.run(until=1.0)

    def orphans():
        total = 0
        for uid in uids:
            snapshot = system.db.get_server_with_uses((0,), str(uid))
            total += sum(sum(c.values()) for c in snapshot.uses.values())
        system._release_probe_locks()
        return total

    assert orphans() > 0, "the crashed client must leave counters behind"
    system.run(until=30.0)
    assert orphans() == 0, "every shard's cleaner must repair its entries"


def test_sharding_rejects_invalid_configs():
    with pytest.raises(ValueError):
        DistributedSystem(SystemConfig(nameserver_shards=0))
    with pytest.raises(ValueError):
        DistributedSystem(SystemConfig(nameserver_shards=2,
                                       nonatomic_name_server=True))


def test_shard_crash_between_prepare_and_commit_resolves_consistently():
    """An Increment whose shard participant dies between prepare and
    commit must resolve consistently on every replica: the survivors
    commit the decided action, the casualty's prepared-but-undecided
    state dies with its volatile memory, and resync re-copies the
    committed entry before the host serves again."""
    from repro import FaultPlan

    # The independent scheme (figure 7) Increments under its own
    # top-level bind action, so the shard participant votes "ok" --
    # standard binding never writes the db and would prepare read-only.
    system, (client,), uids = build(shards=3, objects=3,
                                    scheme="independent",
                                    nameserver_replication=2)
    uid = uids[0]
    replicas = system.shard_router.preference_list(uid, 2)
    victim = replicas[0]
    victim_node = system.nodes[victim]
    db = system.db.shards[victim]

    fired = arm_crash_after_prepare(system, db, victim_node)
    result = system.run_transaction(client, add_work(uid, 1))
    del db.prepare

    assert fired, "the doctored prepare must have fired"
    assert victim_node.crashed
    # The bind action resolves *committed*: the survivor took phase 2,
    # the victim's missed commit is a recorded heuristic.  The client
    # action itself is conservatively vetoed (it had read-enlisted the
    # now-silent victim), so per the paper it simply restarts -- and
    # the restart must commit by skipping the dead replica.
    attempts = 1
    while not result.committed and attempts < 3:
        result = system.run_transaction(client, add_work(uid, 1))
        attempts += 1
    assert result.committed, "the restarted action must commit"
    assert system.run_transaction(client, get_work(uid)).value == 1

    plan = FaultPlan().recover_at(system.scheduler.now + 1.0, victim)
    system.install_fault_plan(plan)
    system.run(until=system.scheduler.now + 30.0)
    assert system.shard_resyncers[victim].serving

    assert_shard_replicas_agree(system, uid)
    follow_up = system.run_transaction(client, add_work(uid, 1))
    assert follow_up.committed
    assert system.run_transaction(client, get_work(uid)).value == \
        result.value + 1


def test_active_replication_on_the_ring():
    system, (client,), uids = build(shards=2, sv=("a1", "a2", "a3"),
                                    st=("b1",), policy=ActiveReplication(),
                                    objects=1)
    uid = uids[0]

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["a2"].crash()
        return (yield from txn.invoke(uid, "add", 1))

    result = system.run_transaction(client, work)
    assert result.committed and result.value == 2
