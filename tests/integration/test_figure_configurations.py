"""Integration tests for the four |Sv| x |St| configurations (figures 2-5).

Each test pins the abort rules the paper states for that configuration
(section 3.2).
"""

from repro import (
    ActiveReplication,
    DistributedSystem,
    SingleCopyPassive,
    SystemConfig,
)

from tests.conftest import Counter, add_work, build_system, get_work


def build(sv, st, policy=None, seed=7):
    system = DistributedSystem(SystemConfig(seed=seed))
    system.registry.register(Counter)
    for host in dict.fromkeys(list(sv) + list(st)):
        system.add_node(host, server=host in sv, store=host in st)
    client = system.add_client("c1", policy=policy or SingleCopyPassive())
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=list(sv), st_hosts=list(st))
    return system, client, uid


# -- figure 2: |Sv| = |St| = 1 (non-replicated) --------------------------------


def test_fig2_normal_operation():
    system, client, uid = build(sv=["alpha"], st=["beta"])
    assert system.run_transaction(client, add_work(uid, 1)).committed


def test_fig2_alpha_equals_beta_common_case():
    system, client, uid = build(sv=["node"], st=["node"])
    assert system.run_transaction(client, add_work(uid, 1)).committed


def test_fig2_server_down_aborts():
    system, client, uid = build(sv=["alpha"], st=["beta"])
    system.nodes["alpha"].crash()
    result = system.run_transaction(client, add_work(uid, 1))
    assert not result.committed


def test_fig2_store_down_aborts():
    system, client, uid = build(sv=["alpha"], st=["beta"])
    system.nodes["beta"].crash()
    result = system.run_transaction(client, add_work(uid, 1))
    assert not result.committed


def test_fig2_store_crash_during_action_aborts():
    system, client, uid = build(sv=["alpha"], st=["beta"])

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["beta"].crash()

    assert not system.run_transaction(client, work).committed


# -- figure 3: |Sv| = 1, |St| > 1 (replicated state) ------------------------------


def test_fig3_commit_updates_every_store():
    system, client, uid = build(sv=["alpha"], st=["b1", "b2", "b3"])
    system.run_transaction(client, add_work(uid, 1))
    assert system.store_versions(uid) == {"b1": 2, "b2": 2, "b3": 2}


def test_fig3_survives_all_but_one_store():
    system, client, uid = build(sv=["alpha"], st=["b1", "b2", "b3"])
    system.nodes["b1"].crash()
    system.nodes["b2"].crash()
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    assert system.db_st(uid) == ["b3"]


def test_fig3_server_down_aborts_despite_stores():
    system, client, uid = build(sv=["alpha"], st=["b1", "b2"])
    system.nodes["alpha"].crash()
    assert not system.run_transaction(client, add_work(uid, 1)).committed


def test_fig3_all_stores_down_aborts():
    system, client, uid = build(sv=["alpha"], st=["b1", "b2"])
    system.nodes["b1"].crash()
    system.nodes["b2"].crash()
    assert not system.run_transaction(client, add_work(uid, 1)).committed


# -- figure 4: |Sv| > 1, |St| = 1 (replicated servers) ------------------------------


def test_fig4_active_replication_masks_k_minus_1():
    system, client, uid = build(sv=["a1", "a2", "a3"], st=["beta"],
                                policy=ActiveReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["a2"].crash()
        system.nodes["a3"].crash()
        v = yield from txn.invoke(uid, "add", 1)
        return v

    result = system.run_transaction(client, work)
    assert result.committed
    assert result.value == 2


def test_fig4_single_store_down_aborts():
    system, client, uid = build(sv=["a1", "a2"], st=["beta"],
                                policy=ActiveReplication())
    system.nodes["beta"].crash()
    assert not system.run_transaction(client, add_work(uid, 1)).committed


def test_fig4_k_equals_1_no_replication():
    system, client, uid = build(sv=["a1", "a2"], st=["beta"],
                                policy=ActiveReplication(degree=1))

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["a1"].crash()
        yield from txn.invoke(uid, "add", 1)

    assert not system.run_transaction(client, work).committed


# -- figure 5: |Sv| > 1, |St| > 1 (the general case) ----------------------------------


def test_fig5_survives_server_and_store_crashes():
    system, client, uid = build(sv=["a1", "a2", "a3"], st=["b1", "b2", "b3"],
                                policy=ActiveReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["a3"].crash()
        system.nodes["b2"].crash()
        v = yield from txn.invoke(uid, "add", 1)
        return v

    result = system.run_transaction(client, work)
    assert result.committed
    assert result.value == 2
    assert sorted(system.db_st(uid)) == ["b1", "b3"]


def test_fig5_sequential_availability_through_rolling_failures():
    system, client, uid = build(sv=["a1", "a2"], st=["b1", "b2"],
                                policy=SingleCopyPassive())
    assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes["a1"].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes["b1"].crash()
    assert system.run_transaction(client, add_work(uid, 1)).committed
    final = system.run_transaction(client, get_work(uid))
    assert final.value == 3


def test_fig5_unavailable_when_all_sv_down():
    system, client, uid = build(sv=["a1", "a2"], st=["b1", "b2"])
    system.nodes["a1"].crash()
    system.nodes["a2"].crash()
    assert not system.run_transaction(client, add_work(uid, 1)).committed


def test_fig5_unavailable_when_all_st_down():
    system, client, uid = build(sv=["a1", "a2"], st=["b1", "b2"])
    system.nodes["b1"].crash()
    system.nodes["b2"].crash()
    assert not system.run_transaction(client, add_work(uid, 1)).committed
