"""Batch-boundary crash windows for the raw-speed commit plane.

The ``CommitBatcher`` coalesces concurrent actions' same-phase RPCs
into one ``_many`` call, so every 2PC crash window now has a batched
shape: a vetoed action sharing a prepare batch with a committing one,
a store host dying with several actions' shadows in one batch, a
coordinator dying between the batched prepare and commit waves.  These
tests pin the invariant the batcher must preserve through all of them:
each action sees exactly the per-call verdicts it would have seen
unbatched -- batching changes message count, never outcomes.
"""

from repro import DistributedSystem, SingleCopyPassive, SystemConfig

from tests.conftest import Counter, add_work, get_work


def build_batched(st1=("t1",), st2=("t1",), window=0.005, **config):
    """Two counters for two concurrent actions on one batching client."""
    system = DistributedSystem(SystemConfig(
        seed=11, commit_batching=True, commit_batch_window=window,
        enable_recovery_managers=False, **config))
    system.registry.register(Counter)
    for host in ("s1", "s2"):
        system.add_node(host, server=True)
    for host in sorted(set(st1) | set(st2)):
        system.add_node(host, store=True)
    client = system.add_client("c1", policy=SingleCopyPassive())
    uid1 = system.create_object(Counter(system.new_uid(), value=0),
                                sv_hosts=["s1"], st_hosts=list(st1))
    uid2 = system.create_object(Counter(system.new_uid(), value=0),
                                sv_hosts=["s2"], st_hosts=list(st2))
    return system, client, uid1, uid2


def run_concurrently(system, client, *works):
    processes = [client.transaction(work) for work in works]
    return [system.scheduler.run_until_settled(p, until=300.0)
            for p in processes]


def test_mixed_outcome_prepare_batch_spares_the_batchmate():
    """Vote demux under a mixed COMMIT/ABORT batch: one action's shadow
    write is refused per-item inside the shared ``write_shadow_many``;
    it votes ABORT while its batchmate commits untouched."""
    system, client, uid1, uid2 = build_batched()
    store = system.nodes["t1"].object_store
    original = store.write_shadow

    def refuse_uid2(uid, buffer, version):
        if uid == uid2:
            raise ValueError("disk quota refused")
        return original(uid, buffer, version)

    store.write_shadow = refuse_uid2
    first, second = run_concurrently(
        system, client, add_work(uid1, 1), add_work(uid2, 1))

    # The two prepares really shared one batch...
    assert system.metrics.counter_value("commit_batch.batched_rpcs") >= 1
    # ...and were demultiplexed: the refused action aborts alone.
    assert first.committed
    assert not second.committed
    final1 = system.run_transaction(client, get_work(uid1))
    final2 = system.run_transaction(client, get_work(uid2))
    assert final1.value == 1
    assert final2.value == 0  # the aborted action's effect never showed


def test_store_crash_mid_batch_excludes_without_aborting_batchmates():
    """t1 dies holding both actions' shadows (written by one batched
    ``write_shadow_many``); each action excludes the victim from its
    own St and commits on its surviving replica."""
    system, client, uid1, uid2 = build_batched(st1=("t1", "t2"),
                                               st2=("t1", "t3"))
    store = system.nodes["t1"].object_store
    original = store.write_shadow
    written = []

    def write_then_die(uid, buffer, version):
        original(uid, buffer, version)
        written.append(uid)
        if len(written) == 2:
            # Both batchmates' shadows landed: die before either
            # commit_shadow can arrive.
            system.scheduler.call_soon(system.nodes["t1"].crash)

    store.write_shadow = write_then_die
    first, second = run_concurrently(
        system, client, add_work(uid1, 1), add_work(uid2, 1))

    assert system.metrics.counter_value("commit_batch.batched_rpcs") >= 1
    assert first.committed and second.committed
    assert system.db_st(uid1) == ["t2"]
    assert system.db_st(uid2) == ["t3"]
    assert system.metrics.counter_value("commit.late_exclusions") == 2
    assert system.store_versions(uid1)["t2"] == 2
    assert system.store_versions(uid2)["t3"] == 2


def test_coordinator_crash_between_batched_waves_presumes_abort():
    """The coordinator dies after the batched prepare wave but before
    any commit wave: no participant may apply, and cleanup restores
    quiescence exactly as it would for unbatched 2PC."""
    system, client, uid1, uid2 = build_batched(
        binding_scheme="independent", enable_cleaner=True,
        cleaner_interval=2.0)
    store = system.nodes["t1"].object_store
    original = store.write_shadow
    written = []

    def crash_coordinator_after_prepare(uid, buffer, version):
        original(uid, buffer, version)
        written.append(uid)
        if len(written) == 2:
            # Both batchmates prepared on the store; kill the client
            # before its commit wave can start.
            system.scheduler.call_soon(system.nodes["c1"].crash)

    store.write_shadow = crash_coordinator_after_prepare
    processes = [client.transaction(add_work(uid1, 1)),
                 client.transaction(add_work(uid2, 1))]
    system.run(until=system.scheduler.now + 1.0)
    for process in processes:
        # Killed with the node, or finished as aborted -- never committed.
        if process.done and not process.failed:
            assert not process.result().committed

    # Let the cleanup daemons run their rounds.
    system.run(until=system.scheduler.now + 20.0)

    # Presumed abort: neither action's effect is visible anywhere, and
    # no committed version moved.
    for uid in (uid1, uid2):
        versions = system.store_versions(uid)
        assert set(versions.values()) == {1}, versions
    other = system.add_client("c2", policy=SingleCopyPassive())
    assert system.run_transaction(other, get_work(uid1)).value == 0
    assert system.run_transaction(other, get_work(uid2)).value == 0


def test_recovered_coordinator_batches_again_with_fresh_generation():
    """A crash resets the batcher (buffered futures fail, scheduled
    flushes die via the generation guard); after recovery the same node
    batches new work normally."""
    system, client, uid1, uid2 = build_batched()
    node = system.nodes["c1"]
    node.crash()
    assert node.commit_batcher is not None
    system.run(until=system.scheduler.now + 1.0)
    node.recover()
    system.run(until=system.scheduler.now + 1.0)
    first, second = run_concurrently(
        system, client, add_work(uid1, 1), add_work(uid2, 1))
    assert first.committed and second.committed
    assert system.metrics.counter_value("commit_batch.batched_rpcs") >= 1
