"""The leased read plane under ring churn.

The staleness argument (lease ∧ epoch ⇒ bounded staleness) is cheap to
state and easy to break in the integration: a reshard flips ownership
mid-run, a shard-host crash rewires reads, and a cache that kept
serving through either would hand out bindings routed by a dead ring.
These tests run the whole system with caching on and audit the
:class:`~repro.naming.entry_cache.EntryCache` ledgers afterwards --
every cache-served read must have been inside its lease TTL *and*
tagged with the then-live fence epoch, or the plane is broken.

The long-haul variant composes the cache with the full churn harness
(stochastic crash/recover cycles plus a live reshard) and additionally
re-checks the PR-2 invariant: no committed binding lost, no aborted
effect invented.
"""

import pytest

from tests.conftest import add_work, get_work
from tests.integration.test_sharded_nameserver import build

LEASE = 2.0


def audit_ledgers(system):
    """Assert every cache served real hits and none escaped bounds."""
    total_hits = 0
    for name, cache in system.entry_caches.items():
        violations = cache.ledger_violations()
        assert violations == [], \
            f"{name}: cache-served reads escaped their bounds: {violations}"
        total_hits += len(cache.ledger)
    return total_hits


def test_reshard_mid_run_never_serves_past_the_fence():
    system, (client,), uids = build(
        shards=2, objects=6, clients=1, scheme="standard",
        nameserver_replication=2, nameserver_lease=LEASE,
        nameserver_cache_ledger=True, enable_recovery_managers=False)

    committed = {str(uid): 0 for uid in uids}
    migration = None
    while system.scheduler.now < 12.0:
        for uid in uids:
            result = system.run_transaction(client, add_work(uid, 1),
                                            timeout=30.0)
            if result.committed:
                committed[str(uid)] += 1
        if migration is None and system.scheduler.now >= 4.0:
            epoch_before = system.shard_router.fence_epoch
            migration = system.add_shard_host()

    assert migration is not None
    outcome = system.run_until(migration, timeout=300.0)
    assert outcome["flipped_at"] is not None
    assert system.shard_router.fence_epoch > epoch_before, \
        "the migration must have advanced the fence"
    system.run(until=system.scheduler.now + 5.0)

    # No binding lost or invented across the flip...
    for uid in uids:
        result = system.run_transaction(client, get_work(uid), timeout=30.0)
        assert result.committed
        assert result.value == committed[str(uid)]
    # ...and every cache-served read stayed inside lease + epoch.
    hits = audit_ledgers(system)
    assert hits > 0, "the haul must actually exercise the cache"
    # The staged transition and the flip each advanced the fence, so
    # some pre-change entries must have been fenced out, proving the
    # epoch bound did real work (not just the TTL).
    fenced = sum(cache.fenced for cache in system.entry_caches.values())
    assert fenced > 0, "the flip must invalidate pre-change entries"


@pytest.mark.slow
def test_stochastic_churn_with_leases_keeps_every_bound():
    replication = 3
    # The standard scheme (figure 6) is the leased plane's hot path:
    # its bind is exactly one GetServer, served from the cache.  (The
    # use-list schemes read for update and so always bypass the cache.)
    system, (client,), uids = build(
        shards=4, objects=8, clients=1, scheme="standard",
        nameserver_replication=replication,
        nameserver_lease=LEASE, nameserver_cache_ledger=True,
        shard_antientropy_interval=2.0, enable_recovery_managers=False,
        rpc_timeout=0.3, seed=13)
    injector = system.stochastic_faults(system.shard_hosts, mttf=12.0,
                                        mttr=0.8, stop_after=20.0)

    committed = {str(uid): 0 for uid in uids}
    migration = None
    while system.scheduler.now < 25.0:
        for uid in uids:
            result = system.run_transaction(client, add_work(uid, 1),
                                            timeout=30.0)
            if result.committed:
                committed[str(uid)] += 1
        if migration is None and system.scheduler.now >= 8.0:
            migration = system.add_shard_host()

    assert injector.crashes_injected > 0, "the haul must actually churn"
    assert migration is not None
    outcome = system.run_until(migration, timeout=600.0)
    assert outcome["flipped_at"] is not None
    system.run(until=system.scheduler.now + 60.0)
    for host, resyncer in system.shard_resyncers.items():
        assert resyncer.serving, f"{host} must be back in the serving path"

    total = sum(committed.values())
    assert total > 0, "the haul must commit real work through the churn"
    for uid in uids:
        result = system.run_transaction(client, get_work(uid), timeout=30.0)
        assert result.committed, f"final read of {uid}: {result.reason}"
        assert result.value == committed[str(uid)], \
            (f"{uid}: committed {committed[str(uid)]} but the counter "
             f"reads {result.value}")

    hits = audit_ledgers(system)
    assert hits > 0, "the haul must actually exercise the cache"
