"""Property-based tests for the naming databases.

The central invariant: any interleaving of operations and aborts leaves
the database exactly as if the aborted actions had never run.
"""

from hypothesis import given, strategies as st

from repro.actions import AtomicAction
from repro.actions.errors import ActionError
from repro.naming import GroupViewDatabase, NamingError
from repro.storage import Uid

HOSTS = ["h1", "h2", "h3", "h4"]
UID_TEXT = "sys:1"


@st.composite
def db_operations(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=15))):
        kind = draw(st.sampled_from(
            ["insert", "remove", "increment", "decrement", "exclude",
             "include"]))
        host = draw(st.sampled_from(HOSTS))
        ops.append((kind, host))
    return ops


def fresh_db():
    db = GroupViewDatabase()
    boot = AtomicAction()
    db.define_object(boot.id.path, UID_TEXT, ["h1", "h2"], ["h1", "h2"])
    db.commit(boot.id.path)
    return db


def snapshot(db):
    probe = AtomicAction()
    sv = db.get_server_with_uses(probe.id.path, UID_TEXT)
    stv = db.get_view(probe.id.path, UID_TEXT)
    db.abort(probe.id.path)
    return (sv.hosts, tuple(sorted((h, tuple(sorted(c.items())))
                                   for h, c in sv.uses.items())), tuple(stv))


def apply_ops(db, action, ops):
    for kind, host in ops:
        try:
            if kind == "insert":
                db.insert(action.id.path, UID_TEXT, host)
            elif kind == "remove":
                db.remove(action.id.path, UID_TEXT, host)
            elif kind == "increment":
                db.increment(action.id.path, "cn", UID_TEXT, [host])
            elif kind == "decrement":
                db.decrement(action.id.path, "cn", UID_TEXT, [host])
            elif kind == "exclude":
                db.exclude(action.id.path, [(UID_TEXT, [host])])
            else:
                db.include(action.id.path, UID_TEXT, host)
        except (NamingError, ActionError):
            pass  # refused ops are fine; we test state effects


@given(db_operations())
def test_abort_restores_exact_prior_state(ops):
    db = fresh_db()
    before = snapshot(db)
    action = AtomicAction()
    apply_ops(db, action, ops)
    db.abort(action.id.path)
    assert snapshot(db) == before


@given(db_operations(), db_operations())
def test_aborted_action_invisible_to_later_committed_one(ops1, ops2):
    """Run ops1+abort then ops2+commit; equal to just ops2+commit."""
    db_a = fresh_db()
    action1 = AtomicAction()
    apply_ops(db_a, action1, ops1)
    db_a.abort(action1.id.path)
    action2 = AtomicAction()
    apply_ops(db_a, action2, ops2)
    db_a.commit(action2.id.path)

    db_b = fresh_db()
    action3 = AtomicAction()
    apply_ops(db_b, action3, ops2)
    db_b.commit(action3.id.path)

    assert snapshot(db_a) == snapshot(db_b)


@given(db_operations())
def test_commit_then_abort_of_other_action_keeps_committed_state(ops):
    db = fresh_db()
    action = AtomicAction()
    apply_ops(db, action, ops)
    db.commit(action.id.path)
    committed = snapshot(db)
    other = AtomicAction()
    db.abort(other.id.path)  # aborting an empty action changes nothing
    assert snapshot(db) == committed


@given(db_operations())
def test_no_locks_remain_after_terminal_state(ops):
    db = fresh_db()
    action = AtomicAction()
    apply_ops(db, action, ops)
    db.commit(action.id.path)
    assert not db.server_db.locks.owners()
    assert not db.state_db.locks.owners()
