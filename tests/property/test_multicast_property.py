"""Property-based tests for the reliable ordered multicast.

The two guarantees the paper requires of group communication (section
2.3): every functioning member delivers the same set of messages, in
the same order -- under arbitrary message loss and sender choice.
"""

from hypothesis import given, settings, strategies as st

from repro.net import (
    FixedLatency,
    GroupView,
    MessageDemux,
    Network,
    ReliableOrderedMulticastMember,
)
from repro.sim import Scheduler, SeededRng


@st.composite
def multicast_scenarios(draw):
    n_members = draw(st.integers(min_value=2, max_value=4))
    n_messages = draw(st.integers(min_value=1, max_value=8))
    senders = [draw(st.integers(min_value=0, max_value=n_members - 1))
               for _ in range(n_messages)]
    drop_seed = draw(st.integers(min_value=0, max_value=10_000))
    drop_rate = draw(st.sampled_from([0.0, 0.1, 0.3]))
    return n_members, senders, drop_seed, drop_rate


@given(multicast_scenarios())
@settings(max_examples=40, deadline=None)
def test_agreement_and_total_order_under_loss(scenario):
    n_members, senders, drop_seed, drop_rate = scenario
    s = Scheduler()
    rng = SeededRng(drop_seed)
    net = Network(s, FixedLatency(0.01), drop_probability=drop_rate, rng=rng)
    names = [f"m{i}" for i in range(n_members)]
    view = GroupView(tuple(names))
    logs = {}
    members = {}
    for name in names:
        nic = net.attach(name)
        member = ReliableOrderedMulticastMember(
            s, nic, MessageDemux(nic), nack_delay=0.05)
        logs[name] = []
        member.join("G", view, lambda d, n=name: logs[n].append(
            (d.seq, d.payload)))
        members[name] = member

    # Lossy phase: submissions and data messages may vanish.
    for i, sender_index in enumerate(senders):
        s.schedule(i * 0.005, members[names[sender_index]].send,
                   "G", view, f"msg-{i}")
    s.run(until=30.0, max_events=500_000)

    # Safety under loss: every delivery list is gap-free, duplicate-free,
    # seq-ascending, and all members agree on their common prefix.
    sequences = list(logs.values())
    for deliveries in sequences:
        seqs = [seq for seq, _ in deliveries]
        assert seqs == list(range(1, len(seqs) + 1)), \
            f"gap or disorder in delivered sequence: {seqs}"
    shortest = min(len(d) for d in sequences)
    for other in sequences[1:]:
        assert other[:shortest] == sequences[0][:shortest]

    # Liveness once the network heals: a flush message over the now
    # lossless network triggers NACK repair of any tail loss, after
    # which all members hold identical complete sequences.
    net._drop_probability = 0.0
    members[names[0]].send("G", view, "flush")
    s.run(until=s.now + 30.0, max_events=500_000)
    final_sequences = list(logs.values())
    first = final_sequences[0]
    assert all(other == first for other in final_sequences[1:])
    assert first[-1][1] == "flush"


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0,
                                                          max_value=999))
@settings(max_examples=20, deadline=None)
def test_no_duplicates_ever(n_members, seed):
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    names = [f"m{i}" for i in range(n_members)]
    view = GroupView(tuple(names))
    logs = {}
    members = {}
    for name in names:
        nic = net.attach(name)
        member = ReliableOrderedMulticastMember(s, nic, MessageDemux(nic))
        logs[name] = []
        member.join("G", view, lambda d, n=name: logs[n].append(d.payload))
        members[name] = member
    rng = SeededRng(seed)
    for i in range(6):
        sender = rng.choice(names)
        s.schedule(i * 0.003, members[sender].send, "G", view, i)
    s.run(until=30.0, max_events=200_000)
    for deliveries in logs.values():
        assert len(deliveries) == len(set(deliveries))
