"""Property-based tests for the lock manager invariants."""

from hypothesis import given, strategies as st

from repro.actions import ActionId, LockManager, LockMode, LockRefused, lock_compatible

modes = st.sampled_from(list(LockMode))
owner_serials = st.integers(min_value=1, max_value=6)
resources = st.sampled_from(["r1", "r2", "r3"])


@st.composite
def lock_scripts(draw):
    """A random sequence of try_lock/release operations."""
    script = []
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        kind = draw(st.sampled_from(["lock", "release", "release_all"]))
        serial = draw(owner_serials)
        if kind == "lock":
            script.append(("lock", serial, draw(resources), draw(modes)))
        elif kind == "release":
            script.append(("release", serial, draw(resources)))
        else:
            script.append(("release_all", serial))
    return script


def run_script(script):
    lm = LockManager()
    for step in script:
        if step[0] == "lock":
            _, serial, resource, mode = step
            try:
                lm.try_lock(ActionId((serial,)), resource, mode)
            except LockRefused:
                pass
        elif step[0] == "release":
            _, serial, resource = step
            lm.release(ActionId((serial,)), resource)
        else:
            lm.release_all(ActionId((step[1],)))
    return lm


@given(lock_scripts())
def test_held_locks_always_pairwise_compatible(script):
    """Whatever the operation sequence, granted locks of unrelated
    owners are pairwise compatible -- the fundamental safety property."""
    lm = run_script(script)
    for resource in ("r1", "r2", "r3"):
        holders = lm.holders_of(resource)
        for i, (owner_a, mode_a) in enumerate(holders):
            for owner_b, mode_b in holders[i + 1:]:
                if owner_a.related(owner_b):
                    continue
                assert lock_compatible(mode_a, mode_b) or \
                    lock_compatible(mode_b, mode_a), (
                        f"incompatible grant: {mode_a} vs {mode_b}")


@given(lock_scripts())
def test_at_most_one_lock_per_owner_per_resource(script):
    lm = run_script(script)
    for resource in ("r1", "r2", "r3"):
        owners = [owner for owner, _ in lm.holders_of(resource)]
        assert len(owners) == len(set(owners))


@given(lock_scripts())
def test_release_all_leaves_no_trace(script):
    lm = run_script(script)
    for serial in range(1, 7):
        lm.release_all(ActionId((serial,)))
    for resource in ("r1", "r2", "r3"):
        assert not lm.is_locked(resource)


@given(lock_scripts(), st.integers(min_value=1, max_value=6))
def test_inherit_preserves_total_hold(script, child_serial):
    """Inheriting to a parent never loses a resource hold."""
    lm = run_script(script)
    child = ActionId((child_serial, 99))
    # Grab something as a nested child of `child_serial` where possible.
    try:
        lm.try_lock(child, "r1", LockMode.READ)
    except LockRefused:
        pass
    held_before = {resource for resource in ("r1", "r2", "r3")
                   if lm.mode_held(child, resource)
                   or lm.mode_held(ActionId((child_serial,)), resource)}
    lm.inherit(child, ActionId((child_serial,)))
    held_after = {resource for resource in ("r1", "r2", "r3")
                  if lm.mode_held(ActionId((child_serial,)), resource)}
    assert held_before <= held_after | {r for r in ("r1", "r2", "r3")
                                        if lm.mode_held(child, r)}
    # After inherit the child holds nothing.
    for resource in ("r1", "r2", "r3"):
        assert lm.mode_held(child, resource) is None


@given(modes, modes)
def test_write_never_shares(requested, held):
    if LockMode.WRITE in (requested, held):
        assert not lock_compatible(requested, held)


@given(modes)
def test_read_shares_with_everything_but_write(mode):
    expected = mode is not LockMode.WRITE
    assert lock_compatible(LockMode.READ, mode) is expected
