"""Property-based tests for the shadow-copy object store."""

from hypothesis import given, strategies as st

from repro.storage import NoSuchShadow, ObjectStore, StorageError, Uid

UID = Uid("n", 1)


@st.composite
def store_scripts(draw):
    """Random interleavings of the shadow protocol plus crashes."""
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=30))):
        ops.append(draw(st.sampled_from(
            ["write_shadow", "commit_shadow", "discard_shadow",
             "crash_recover", "install"])))
    return ops


def run_script(ops):
    """Execute the script tracking the model: committed follows only
    commit_shadow/install; a crash clears shadows."""
    store = ObjectStore("beta")
    store.install(UID, b"genesis", 1)
    model_version = 1
    shadow_version = None
    next_version = 2
    for op in ops:
        if op == "write_shadow":
            try:
                store.write_shadow(UID, b"data%d" % next_version, next_version)
                shadow_version = next_version
                next_version += 1
            except ValueError:
                pass  # version not newer; model unchanged
        elif op == "commit_shadow":
            try:
                store.commit_shadow(UID)
                if shadow_version is not None and shadow_version > model_version:
                    model_version = shadow_version
                shadow_version = None
            except NoSuchShadow:
                pass
        elif op == "discard_shadow":
            store.discard_shadow(UID)
            shadow_version = None
        elif op == "crash_recover":
            store.mark_down()
            store.mark_up()
            shadow_version = None
        else:  # install
            store.install(UID, b"inst%d" % next_version, next_version)
            model_version = next_version
            next_version += 1
    return store, model_version, shadow_version


@given(store_scripts())
def test_committed_version_matches_model(ops):
    store, model_version, _ = run_script(ops)
    assert store.version_of(UID) == model_version


@given(store_scripts())
def test_version_never_regresses(ops):
    store = ObjectStore("beta")
    store.install(UID, b"genesis", 1)
    last = 1
    next_version = 2
    for op in ops:
        try:
            if op == "write_shadow":
                store.write_shadow(UID, b"x", next_version)
                next_version += 1
            elif op == "commit_shadow":
                store.commit_shadow(UID)
            elif op == "discard_shadow":
                store.discard_shadow(UID)
            elif op == "crash_recover":
                store.mark_down()
                store.mark_up()
            else:
                store.install(UID, b"y", next_version)
                next_version += 1
        except StorageError:
            pass
        except ValueError:
            pass
        current = store.version_of(UID)
        assert current >= last
        last = current


@given(store_scripts())
def test_shadow_state_consistent(ops):
    store, _, shadow_version = run_script(ops)
    assert store.has_shadow(UID) == (shadow_version is not None)
    if shadow_version is not None:
        assert store.shadow_version_of(UID) == shadow_version
