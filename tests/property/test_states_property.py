"""Property-based tests for the serialisation buffers."""

from hypothesis import given, strategies as st

from repro.storage import InputObjectState, OutputObjectState, Uid

uids = st.builds(Uid,
                 st.text(alphabet=st.characters(min_codepoint=33,
                                                max_codepoint=126),
                         min_size=1, max_size=20),
                 st.integers(min_value=0, max_value=2**31))

INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)

value_strategies = {
    "int": INT64,
    "float": st.floats(allow_nan=False, allow_infinity=True),
    "bool": st.booleans(),
    "string": st.text(max_size=200),
    "bytes": st.binary(max_size=200),
    "string_list": st.lists(st.text(max_size=30), max_size=20),
}

tagged_values = st.one_of([
    st.tuples(st.just(tag), strategy)
    for tag, strategy in value_strategies.items()
])


@given(uid=uids, type_name=st.text(max_size=50), values=st.lists(tagged_values,
                                                                 max_size=30))
def test_any_pack_sequence_roundtrips(uid, type_name, values):
    out = OutputObjectState(uid, type_name)
    for tag, value in values:
        getattr(out, f"pack_{tag}")(value)
    state = InputObjectState(out.buffer())
    assert state.uid == uid
    assert state.type_name == type_name
    for tag, value in values:
        recovered = getattr(state, f"unpack_{tag}")()
        assert recovered == value
    assert state.exhausted


@given(uid=uids)
def test_uid_pack_roundtrip(uid):
    out = OutputObjectState(uid, "t")
    out.pack_uid(uid)
    state = InputObjectState(out.buffer())
    assert state.unpack_uid() == uid


@given(values=st.lists(INT64, min_size=1, max_size=50))
def test_buffer_length_deterministic(values):
    def build():
        out = OutputObjectState(Uid("n", 1), "t")
        for v in values:
            out.pack_int(v)
        return out.buffer()
    assert build() == build()
