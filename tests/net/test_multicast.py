"""Tests for naive and reliable ordered multicast (figure 1)."""

from repro.net import (
    FixedLatency,
    GroupView,
    LoggedReliableMulticastMember,
    MessageDemux,
    NaiveMulticastMember,
    Network,
    ReliableOrderedMulticastMember,
)
from repro.sim import Scheduler


def make_members(cls, names, group, view_names=None, **kwargs):
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    members = {}
    logs = {}
    view = GroupView(tuple(view_names or names))
    for name in names:
        nic = net.attach(name)
        member = cls(s, nic, MessageDemux(nic), **kwargs)
        members[name] = member
        if name in view:
            logs[name] = []
            member.join(group, view, lambda d, n=name: logs[n].append(d))
    return s, net, members, logs, view


def test_naive_delivers_to_all_when_no_failures():
    s, _, members, logs, view = make_members(
        NaiveMulticastMember, ["a", "b", "c"], "G")
    members["a"].send("G", view, "msg")
    s.run()
    assert [d.payload for d in logs["b"]] == ["msg"]
    assert [d.payload for d in logs["c"]] == ["msg"]


def test_naive_partial_delivery_on_sender_crash():
    """The figure-1 failure: sender crashes between unicasts."""
    s, net, members, logs, view = make_members(
        NaiveMulticastMember, ["g1", "g2", "x"], "G",
        view_names=["g1", "g2"], stagger=0.001)
    members["x"].send("G", view, "reply")
    s.schedule(0.0005, lambda: setattr(net.interface("x"), "up", False))
    s.run()
    assert [d.payload for d in logs["g1"]] == ["reply"]
    assert [d.payload for d in logs["g2"]] == []  # divergence!


def test_reliable_all_or_nothing_on_sender_crash():
    """Same crash pattern: flooding relay closes the gap."""
    s, net, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["g1", "g2", "x"], "G",
        view_names=["g1", "g2"], stagger=0.001)
    members["x"].send("G", view, "reply")
    s.schedule(0.0005, lambda: setattr(net.interface("x"), "up", False))
    s.run()
    assert [d.payload for d in logs["g1"]] == ["reply"]
    assert [d.payload for d in logs["g2"]] == ["reply"]


def test_reliable_sequencer_crash_mid_fanout_still_all_or_nothing():
    """Sequencer crashes after reaching only one member: relay saves it."""
    s, net, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["g1", "g2", "g3", "x"], "G",
        view_names=["g1", "g2", "g3"], stagger=0.01)
    members["x"].send("G", view, "m")
    # g1 is the sequencer; it delivers locally at ~0.01 and emits to g2
    # then g3 staggered.  Crash it between the two emissions.
    s.schedule(0.025, lambda: setattr(net.interface("g1"), "up", False))
    s.run(max_events=100000)
    assert [d.payload for d in logs["g2"]] == ["m"]
    assert [d.payload for d in logs["g3"]] == ["m"]


def test_reliable_total_order_across_senders():
    s, _, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["a", "b", "c", "s1", "s2"], "G",
        view_names=["a", "b", "c"])
    for i in range(5):
        members["s1"].send("G", view, f"s1-{i}")
        members["s2"].send("G", view, f"s2-{i}")
    s.run(max_events=200000)
    sequences = {n: [d.payload for d in logs[n]] for n in ("a", "b", "c")}
    assert len(sequences["a"]) == 10
    assert sequences["a"] == sequences["b"] == sequences["c"]
    seqs = [d.seq for d in logs["a"]]
    assert seqs == sorted(seqs)


def test_reliable_nack_repairs_targeted_drop():
    s, net, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["a", "b", "x"], "G",
        view_names=["a", "b"], nack_delay=0.05)
    # Drop the first direct data emission to b AND a's relay, forcing b
    # to discover the gap via the next message and NACK-repair it.
    dropped = []

    def drop_first_to_b(msg):
        if (msg.kind == "mcast.data" and msg.target == "b"
                and getattr(msg.payload, "seq", 0) == 1 and len(dropped) < 2):
            dropped.append(msg)
            return True
        return False

    net.add_drop_rule(drop_first_to_b)
    members["x"].send("G", view, "one")
    s.run(until=0.04)
    net.clear_drop_rules()
    members["x"].send("G", view, "two")
    s.run(until=5.0)
    assert [d.payload for d in logs["b"]] == ["one", "two"]
    assert [d.payload for d in logs["a"]] == ["one", "two"]


def test_logged_member_serves_nack_after_delivery():
    s, net, members, logs, view = make_members(
        LoggedReliableMulticastMember, ["a", "b", "x"], "G",
        view_names=["a", "b"], nack_delay=0.05)
    dropped = []

    def drop_all_seq1_to_b(msg):
        if (msg.kind == "mcast.data" and msg.target == "b"
                and getattr(msg.payload, "seq", 0) == 1):
            if len(dropped) < 2:
                dropped.append(msg)
                return True
        return False

    net.add_drop_rule(drop_all_seq1_to_b)
    members["x"].send("G", view, "one")
    s.run(until=0.03)
    net.clear_drop_rules()
    # a has *delivered* seq 1 (not in holdback anymore); only the logged
    # member can answer b's NACK now.
    members["x"].send("G", view, "two")
    s.run(until=5.0)
    assert [d.payload for d in logs["b"]] == ["one", "two"]


def test_duplicate_suppression():
    s, _, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["a", "b"], "G")
    members["a"].send("G", view, "once")
    s.run(max_events=50000)
    # Flooding relays could duplicate; each member must deliver once.
    assert len(logs["a"]) == 1
    assert len(logs["b"]) == 1


def test_non_member_receives_nothing():
    s, _, members, logs, view = make_members(
        NaiveMulticastMember, ["a", "b", "out"], "G", view_names=["a", "b"])
    members["a"].send("G", view, "m")
    s.run()
    assert members["out"].delivered == []


def test_member_reset_forgets_groups():
    s, _, members, logs, view = make_members(
        NaiveMulticastMember, ["a", "b"], "G")
    members["b"].reset()
    members["a"].send("G", view, "m")
    s.run()
    assert logs["b"] == []


def test_join_requires_membership():
    import pytest
    s = Scheduler()
    net = Network(s, FixedLatency())
    nic = net.attach("loner")
    member = NaiveMulticastMember(s, nic, MessageDemux(nic))
    with pytest.raises(ValueError):
        member.join("G", GroupView.of("somebody-else"), lambda d: None)


# -- the coherence plane's late-joiner and mid-push crash patterns -----------


def _pair(s, net, name):
    nic = net.attach(name)
    return ReliableOrderedMulticastMember(s, nic, MessageDemux(nic))


def test_expect_then_join_drains_pushes_raced_with_registration():
    """A push sequenced mid-registration lands in the pre-join stash."""
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    owner = _pair(s, net, "o")
    lessee = _pair(s, net, "c")
    owner.join("G", GroupView.of("o"), lambda d: None)
    # The lessee's registration RPC is in flight: it stashes first.
    lessee.expect("G")
    # The owner admits it and pushes before the join takes effect.
    view = GroupView.of("o", "c")
    owner.update_view("G", view)
    start = owner.next_send_seq("G")
    owner.send("G", view, "inval-1")
    owner.send("G", view, "inval-2")
    s.run()
    got = []
    assert lessee.delivered == []  # stashed, not delivered
    lessee.join("G", view, got.append, from_seq=start)
    assert [d.payload for d in got] == ["inval-1", "inval-2"]


def test_unexpect_drops_the_stash_on_failed_registration():
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    owner = _pair(s, net, "o")
    lessee = _pair(s, net, "c")
    owner.join("G", GroupView.of("o"), lambda d: None)
    lessee.expect("G")
    view = GroupView.of("o", "c")
    owner.update_view("G", view)
    owner.send("G", view, "inval")
    s.run()
    lessee.unexpect("G")
    got = []
    lessee.join("G", view, got.append, from_seq=2)
    s.run()
    assert got == []  # nothing resurrected after the stash was dropped


def test_late_joiner_from_seq_skips_history_without_nacking():
    """Joining at the handed-off sequence sees only subsequent pushes."""
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    owner = _pair(s, net, "o")
    lessee = _pair(s, net, "c")
    owner.join("G", GroupView.of("o"), lambda d: None)
    for i in range(3):
        owner.send("G", GroupView.of("o"), f"old-{i}")
    s.run()
    view = GroupView.of("o", "c")
    owner.update_view("G", view)
    got = []
    lessee.join("G", view, got.append, from_seq=owner.next_send_seq("G"))
    owner.send("G", view, "new")
    s.run(until=5.0)
    assert [d.payload for d in got] == ["new"]


def test_owner_crash_mid_push_flood_relay_closes_the_gap():
    """The owner (sequencer AND origin) crashes between its emissions.

    The coherence push pattern: the owning host sequences its own
    invalidation and fans it out to the lessee cohort.  Crashing after
    reaching only the first lessee must not leave the cohort split --
    the first receiver's flooding relay carries the push to the rest.
    """
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    owner = _pair(s, net, "o")
    l1 = _pair(s, net, "l1")
    l2 = _pair(s, net, "l2")
    view = GroupView.of("o", "l1", "l2")
    logs = {"l1": [], "l2": []}
    owner.join("G", view, lambda d: None)
    l1.join("G", view, logs["l1"].append)
    l2.join("G", view, logs["l2"].append)
    owner.send("G", view, ("inval", "uid-7"))
    # Emissions are staggered (l1 at ~0.0005, l2 at ~0.001); kill the
    # owner's NIC between the two.
    s.schedule(0.0007, lambda: setattr(net.interface("o"), "up", False))
    s.run(max_events=100000)
    assert [d.payload for d in logs["l1"]] == [("inval", "uid-7")]
    assert [d.payload for d in logs["l2"]] == [("inval", "uid-7")]


def test_lessee_crash_mid_push_leaves_the_survivors_consistent():
    """A lessee dying mid-push costs only itself; the stream continues."""
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    owner = _pair(s, net, "o")
    l1 = _pair(s, net, "l1")
    l2 = _pair(s, net, "l2")
    view = GroupView.of("o", "l1", "l2")
    logs = {"l1": [], "l2": []}
    owner.join("G", view, lambda d: None)
    l1.join("G", view, logs["l1"].append)
    l2.join("G", view, logs["l2"].append)
    owner.send("G", view, "push-1")
    s.schedule(0.001, lambda: setattr(net.interface("l2"), "up", False))
    s.run(until=1.0)
    assert [d.payload for d in logs["l1"]] == ["push-1"]
    assert logs["l2"] == []
    # The crash wipes the lessee's volatile group state...
    l2.reset()
    assert not l2.joined("G")
    # ...and the owner keeps pushing to the pruned cohort, sequence
    # numbering intact.
    pruned = GroupView.of("o", "l1")
    owner.update_view("G", pruned)
    owner.send("G", pruned, "push-2")
    s.run(until=2.0)
    assert [d.payload for d in logs["l1"]] == ["push-1", "push-2"]
    assert [d.seq for d in logs["l1"]] == [1, 2]
