"""Tests for naive and reliable ordered multicast (figure 1)."""

from repro.net import (
    FixedLatency,
    GroupView,
    LoggedReliableMulticastMember,
    MessageDemux,
    NaiveMulticastMember,
    Network,
    ReliableOrderedMulticastMember,
)
from repro.sim import Scheduler


def make_members(cls, names, group, view_names=None, **kwargs):
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    members = {}
    logs = {}
    view = GroupView(tuple(view_names or names))
    for name in names:
        nic = net.attach(name)
        member = cls(s, nic, MessageDemux(nic), **kwargs)
        members[name] = member
        if name in view:
            logs[name] = []
            member.join(group, view, lambda d, n=name: logs[n].append(d))
    return s, net, members, logs, view


def test_naive_delivers_to_all_when_no_failures():
    s, _, members, logs, view = make_members(
        NaiveMulticastMember, ["a", "b", "c"], "G")
    members["a"].send("G", view, "msg")
    s.run()
    assert [d.payload for d in logs["b"]] == ["msg"]
    assert [d.payload for d in logs["c"]] == ["msg"]


def test_naive_partial_delivery_on_sender_crash():
    """The figure-1 failure: sender crashes between unicasts."""
    s, net, members, logs, view = make_members(
        NaiveMulticastMember, ["g1", "g2", "x"], "G",
        view_names=["g1", "g2"], stagger=0.001)
    members["x"].send("G", view, "reply")
    s.schedule(0.0005, lambda: setattr(net.interface("x"), "up", False))
    s.run()
    assert [d.payload for d in logs["g1"]] == ["reply"]
    assert [d.payload for d in logs["g2"]] == []  # divergence!


def test_reliable_all_or_nothing_on_sender_crash():
    """Same crash pattern: flooding relay closes the gap."""
    s, net, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["g1", "g2", "x"], "G",
        view_names=["g1", "g2"], stagger=0.001)
    members["x"].send("G", view, "reply")
    s.schedule(0.0005, lambda: setattr(net.interface("x"), "up", False))
    s.run()
    assert [d.payload for d in logs["g1"]] == ["reply"]
    assert [d.payload for d in logs["g2"]] == ["reply"]


def test_reliable_sequencer_crash_mid_fanout_still_all_or_nothing():
    """Sequencer crashes after reaching only one member: relay saves it."""
    s, net, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["g1", "g2", "g3", "x"], "G",
        view_names=["g1", "g2", "g3"], stagger=0.01)
    members["x"].send("G", view, "m")
    # g1 is the sequencer; it delivers locally at ~0.01 and emits to g2
    # then g3 staggered.  Crash it between the two emissions.
    s.schedule(0.025, lambda: setattr(net.interface("g1"), "up", False))
    s.run(max_events=100000)
    assert [d.payload for d in logs["g2"]] == ["m"]
    assert [d.payload for d in logs["g3"]] == ["m"]


def test_reliable_total_order_across_senders():
    s, _, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["a", "b", "c", "s1", "s2"], "G",
        view_names=["a", "b", "c"])
    for i in range(5):
        members["s1"].send("G", view, f"s1-{i}")
        members["s2"].send("G", view, f"s2-{i}")
    s.run(max_events=200000)
    sequences = {n: [d.payload for d in logs[n]] for n in ("a", "b", "c")}
    assert len(sequences["a"]) == 10
    assert sequences["a"] == sequences["b"] == sequences["c"]
    seqs = [d.seq for d in logs["a"]]
    assert seqs == sorted(seqs)


def test_reliable_nack_repairs_targeted_drop():
    s, net, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["a", "b", "x"], "G",
        view_names=["a", "b"], nack_delay=0.05)
    # Drop the first direct data emission to b AND a's relay, forcing b
    # to discover the gap via the next message and NACK-repair it.
    dropped = []

    def drop_first_to_b(msg):
        if (msg.kind == "mcast.data" and msg.target == "b"
                and getattr(msg.payload, "seq", 0) == 1 and len(dropped) < 2):
            dropped.append(msg)
            return True
        return False

    net.add_drop_rule(drop_first_to_b)
    members["x"].send("G", view, "one")
    s.run(until=0.04)
    net.clear_drop_rules()
    members["x"].send("G", view, "two")
    s.run(until=5.0)
    assert [d.payload for d in logs["b"]] == ["one", "two"]
    assert [d.payload for d in logs["a"]] == ["one", "two"]


def test_logged_member_serves_nack_after_delivery():
    s, net, members, logs, view = make_members(
        LoggedReliableMulticastMember, ["a", "b", "x"], "G",
        view_names=["a", "b"], nack_delay=0.05)
    dropped = []

    def drop_all_seq1_to_b(msg):
        if (msg.kind == "mcast.data" and msg.target == "b"
                and getattr(msg.payload, "seq", 0) == 1):
            if len(dropped) < 2:
                dropped.append(msg)
                return True
        return False

    net.add_drop_rule(drop_all_seq1_to_b)
    members["x"].send("G", view, "one")
    s.run(until=0.03)
    net.clear_drop_rules()
    # a has *delivered* seq 1 (not in holdback anymore); only the logged
    # member can answer b's NACK now.
    members["x"].send("G", view, "two")
    s.run(until=5.0)
    assert [d.payload for d in logs["b"]] == ["one", "two"]


def test_duplicate_suppression():
    s, _, members, logs, view = make_members(
        ReliableOrderedMulticastMember, ["a", "b"], "G")
    members["a"].send("G", view, "once")
    s.run(max_events=50000)
    # Flooding relays could duplicate; each member must deliver once.
    assert len(logs["a"]) == 1
    assert len(logs["b"]) == 1


def test_non_member_receives_nothing():
    s, _, members, logs, view = make_members(
        NaiveMulticastMember, ["a", "b", "out"], "G", view_names=["a", "b"])
    members["a"].send("G", view, "m")
    s.run()
    assert members["out"].delivered == []


def test_member_reset_forgets_groups():
    s, _, members, logs, view = make_members(
        NaiveMulticastMember, ["a", "b"], "G")
    members["b"].reset()
    members["a"].send("G", view, "m")
    s.run()
    assert logs["b"] == []


def test_join_requires_membership():
    import pytest
    s = Scheduler()
    net = Network(s, FixedLatency())
    nic = net.attach("loner")
    member = NaiveMulticastMember(s, nic, MessageDemux(nic))
    with pytest.raises(ValueError):
        member.join("G", GroupView.of("somebody-else"), lambda d: None)
