"""Tests for latency models."""

import pytest

from repro.net import ExponentialLatency, FixedLatency, UniformLatency
from repro.sim import SeededRng


def test_fixed_latency_constant():
    model = FixedLatency(0.25)
    assert model.sample("a", "b") == 0.25
    assert model.typical == 0.25


def test_fixed_latency_rejects_negative():
    with pytest.raises(ValueError):
        FixedLatency(-1.0)


def test_uniform_latency_bounds():
    model = UniformLatency(SeededRng(1), 0.01, 0.02)
    for _ in range(200):
        assert 0.01 <= model.sample("a", "b") <= 0.02
    assert model.typical == 0.02


def test_uniform_latency_validates_range():
    with pytest.raises(ValueError):
        UniformLatency(SeededRng(1), 0.02, 0.01)


def test_uniform_latency_deterministic_per_seed():
    a = UniformLatency(SeededRng(7), 0.0, 1.0)
    b = UniformLatency(SeededRng(7), 0.0, 1.0)
    assert [a.sample("x", "y") for _ in range(5)] == [
        b.sample("x", "y") for _ in range(5)]


def test_exponential_latency_floor():
    model = ExponentialLatency(SeededRng(2), mean=0.01, floor=0.005)
    for _ in range(200):
        assert model.sample("a", "b") >= 0.005
    assert model.typical > 0.005


def test_exponential_latency_validation():
    with pytest.raises(ValueError):
        ExponentialLatency(SeededRng(1), mean=0.0)
    with pytest.raises(ValueError):
        ExponentialLatency(SeededRng(1), mean=0.01, floor=-0.1)
