"""Tests for latency models."""

import pytest

from repro.net import ExponentialLatency, FixedLatency, UniformLatency
from repro.sim import SeededRng


def test_fixed_latency_constant():
    model = FixedLatency(0.25)
    assert model.sample("a", "b") == 0.25
    assert model.typical == 0.25


def test_fixed_latency_rejects_negative():
    with pytest.raises(ValueError):
        FixedLatency(-1.0)


def test_uniform_latency_bounds():
    model = UniformLatency(SeededRng(1), 0.01, 0.02)
    for _ in range(200):
        assert 0.01 <= model.sample("a", "b") <= 0.02
    assert model.typical == 0.02


def test_uniform_latency_validates_range():
    with pytest.raises(ValueError):
        UniformLatency(SeededRng(1), 0.02, 0.01)


def test_uniform_latency_deterministic_per_seed():
    a = UniformLatency(SeededRng(7), 0.0, 1.0)
    b = UniformLatency(SeededRng(7), 0.0, 1.0)
    assert [a.sample("x", "y") for _ in range(5)] == [
        b.sample("x", "y") for _ in range(5)]


def test_exponential_latency_floor():
    model = ExponentialLatency(SeededRng(2), mean=0.01, floor=0.005)
    for _ in range(200):
        assert model.sample("a", "b") >= 0.005
    assert model.typical > 0.005


def test_exponential_latency_validation():
    with pytest.raises(ValueError):
        ExponentialLatency(SeededRng(1), mean=0.0)
    with pytest.raises(ValueError):
        ExponentialLatency(SeededRng(1), mean=0.01, floor=-0.1)


def test_token_bucket_under_rate_is_free():
    from repro.net import TokenBucket
    bucket = TokenBucket(rate=10.0, burst=2.0)
    # Messages arriving slower than the refill rate never wait.
    assert bucket.reserve(0.0) == 0.0
    assert bucket.reserve(0.5) == 0.0
    assert bucket.reserve(1.0) == 0.0


def test_token_bucket_backlog_grows_linearly():
    from repro.net import TokenBucket
    bucket = TokenBucket(rate=2.0, burst=1.0)
    # A burst at t=0: the first message spends the burst allowance,
    # each further message owes another 1/rate of delay.
    assert bucket.reserve(0.0) == 0.0
    assert bucket.reserve(0.0) == pytest.approx(0.5)
    assert bucket.reserve(0.0) == pytest.approx(1.0)
    assert bucket.reserve(0.0) == pytest.approx(1.5)


def test_token_bucket_refills_up_to_burst_only():
    from repro.net import TokenBucket
    bucket = TokenBucket(rate=1.0, burst=2.0)
    bucket.reserve(0.0)
    bucket.reserve(0.0)
    # A long idle period refills to the burst cap, not beyond: two
    # free messages, then the meter bites again.
    assert bucket.reserve(100.0) == 0.0
    assert bucket.reserve(100.0) == 0.0
    assert bucket.reserve(100.0) == pytest.approx(1.0)


def test_token_bucket_validation():
    from repro.net import TokenBucket
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=-5.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.5)
