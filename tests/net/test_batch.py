"""Tests for the commit-plane batcher's coalescing and demux."""

import pytest

from repro.net import (
    FixedLatency,
    MessageDemux,
    Network,
    RpcAgent,
    RpcRemoteError,
    RpcTimeout,
)
from repro.net.batch import CommitBatcher
from repro.sim import Scheduler


class Store:
    """A service with both plain and ``_many`` shapes."""

    def __init__(self):
        self.plain_calls = []
        self.many_calls = []

    def put(self, key, value):
        self.plain_calls.append((key, value))
        return f"{key}={value}"

    def put_many(self, items):
        self.many_calls.append(list(items))
        outcomes = []
        for item in items:
            try:
                (key, value) = item
                if key == "bad":
                    raise ValueError("refused")
                outcomes.append(("ok", f"{key}={value}"))
            except Exception as exc:  # noqa: BLE001 - per-item demux
                outcomes.append(("err", type(exc).__name__, str(exc)))
        return outcomes

    def broken_many(self, items):
        # Violates the demux contract: one outcome short.
        return [("ok", None) for _ in items][:-1]

    def broken(self, x):
        return x


def make_pair(window=0.005, latency=0.01):
    s = Scheduler()
    net = Network(s, FixedLatency(latency))
    agents = {}
    for name in ("a", "b"):
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
    batcher = CommitBatcher(s, agents["a"], window=window)
    return s, agents["a"], agents["b"], batcher


def test_two_calls_in_one_window_share_a_many_rpc():
    s, _a, b, batcher = make_pair()
    store = Store()
    b.register("store", store)
    f1 = batcher.call("b", "store", "put", "x", 1)
    f2 = batcher.call("b", "store", "put", "y", 2)
    assert s.run_until_settled(f1) == "x=1"
    assert s.run_until_settled(f2) == "y=2"
    assert store.plain_calls == []
    assert store.many_calls == [[("x", 1), ("y", 2)]]


def test_mixed_outcomes_demux_per_item():
    """One straggler's refusal must not poison its batchmates."""
    s, _a, b, batcher = make_pair()
    b.register("store", Store())
    good = batcher.call("b", "store", "put", "x", 1)
    bad = batcher.call("b", "store", "put", "bad", 2)
    also_good = batcher.call("b", "store", "put", "z", 3)
    assert s.run_until_settled(good) == "x=1"
    with pytest.raises(RpcRemoteError) as info:
        s.run_until_settled(bad)
    assert info.value.remote_type == "ValueError"
    assert s.run_until_settled(also_good) == "z=3"


def test_singleton_window_ships_the_plain_call():
    """Alone in the window -> no ``_many`` handler needed at all."""
    s, _a, b, batcher = make_pair()
    store = Store()
    b.register("store", store)
    future = batcher.call("b", "store", "put", "x", 1)
    assert s.run_until_settled(future) == "x=1"
    assert store.plain_calls == [("x", 1)]
    assert store.many_calls == []


def test_distinct_methods_and_targets_never_share_a_batch():
    s, _a, b, batcher = make_pair()
    store = Store()
    b.register("store", store)
    f1 = batcher.call("b", "store", "put", "x", 1)
    f2 = batcher.call("missing", "store", "put", "y", 2)
    assert s.run_until_settled(f1) == "x=1"
    assert store.plain_calls == [("x", 1)]  # not coalesced cross-target
    with pytest.raises(RpcTimeout):
        s.run_until_settled(f2)


def test_whole_batch_failure_fails_every_member():
    s, _a, b, batcher = make_pair()
    # No service registered: the one _many RPC fails remotely, and each
    # member sees the verdict its own unbatched call would have seen.
    f1 = batcher.call("b", "store", "put", "x", 1)
    f2 = batcher.call("b", "store", "put", "y", 2)
    with pytest.raises(RpcRemoteError):
        s.run_until_settled(f1)
    with pytest.raises(RpcRemoteError):
        s.run_until_settled(f2)


def test_outcome_count_mismatch_is_a_protocol_error():
    s, _a, b, batcher = make_pair()
    b.register("store", Store())
    f1 = batcher.call("b", "store", "broken", 1)
    f2 = batcher.call("b", "store", "broken", 2)
    for future in (f1, f2):
        with pytest.raises(RpcRemoteError) as info:
            s.run_until_settled(future)
        assert info.value.remote_type == "BatchProtocolError"


def test_reset_fails_buffered_calls_and_kills_scheduled_flushes():
    s, a, b, batcher = make_pair()
    store = Store()
    b.register("store", store)
    doomed = batcher.call("b", "store", "put", "x", 1)
    assert batcher.pending_items == 1
    batcher.reset()
    assert batcher.pending_items == 0
    assert doomed.failed and isinstance(doomed.exception(), RpcTimeout)
    # The flush scheduled before the reset must not fire against the
    # new incarnation's queues...
    survivor = batcher.call("b", "store", "put", "y", 2)
    assert s.run_until_settled(survivor) == "y=2"
    # ...and nothing from the pre-reset batch ever reached the wire.
    assert ("x", 1) not in store.plain_calls
    assert all(("x", 1) not in batch for batch in store.many_calls)


def test_metrics_count_flushes_items_and_batched_rpcs():
    from repro.sim.metrics import MetricsRegistry
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    agents = {}
    for name in ("a", "b"):
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
    metrics = MetricsRegistry()
    batcher = CommitBatcher(s, agents["a"], window=0.005, metrics=metrics)
    agents["b"].register("store", Store())
    futures = [batcher.call("b", "store", "put", f"k{i}", i)
               for i in range(3)]
    for future in futures:
        s.run_until_settled(future)
    lone = batcher.call("b", "store", "put", "solo", 9)
    s.run_until_settled(lone)
    assert metrics.counter_value("commit_batch.flushes") == 2
    assert metrics.counter_value("commit_batch.items") == 3
    assert metrics.counter_value("commit_batch.batched_rpcs") == 1
    assert metrics.histogram("commit_batch.batch_size").count == 2
