"""Tests for group views."""

import pytest

from repro.net import GroupView


def test_of_builder_and_contains():
    view = GroupView.of("a", "b")
    assert "a" in view and "c" not in view
    assert len(view) == 2
    assert list(view) == ["a", "b"]


def test_duplicate_members_rejected():
    with pytest.raises(ValueError):
        GroupView(("a", "a"))


def test_with_member_appends_and_bumps_version():
    view = GroupView.of("a")
    grown = view.with_member("b")
    assert grown.members == ("a", "b")
    assert grown.version == 1
    assert view.members == ("a",)  # immutable


def test_with_existing_member_is_identity():
    view = GroupView.of("a", "b")
    assert view.with_member("a") is view


def test_without_member():
    view = GroupView.of("a", "b", "c")
    shrunk = view.without_member("b")
    assert shrunk.members == ("a", "c")
    assert shrunk.version == 1
    assert view.without_member("zz") is view


def test_empty():
    assert GroupView(()).empty
    assert not GroupView.of("a").empty
