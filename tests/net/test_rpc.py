"""Tests for the RPC layer."""

import pytest

from repro.net import (
    FixedLatency,
    MessageDemux,
    Network,
    RpcAgent,
    RpcRemoteError,
    RpcTimeout,
    StaleRingEpoch,
)
from repro.sim import Scheduler, Timeout


class Calc:
    def __init__(self):
        self.calls = 0

    def add(self, a, b):
        self.calls += 1
        return a + b

    def boom(self):
        raise ValueError("kaput")

    def _secret(self):
        return "hidden"


def make_pair(latency=0.01, **kwargs):
    s = Scheduler()
    net = Network(s, FixedLatency(latency))
    agents = {}
    for name in ("a", "b"):
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic), **kwargs)
    return s, net, agents["a"], agents["b"]


def test_roundtrip():
    s, _, a, b = make_pair()
    b.register("calc", Calc())
    f = a.call("b", "calc", "add", 2, 3)
    assert s.run_until_settled(f) == 5


def test_remote_exception_becomes_rpc_remote_error():
    s, _, a, b = make_pair()
    b.register("calc", Calc())
    f = a.call("b", "calc", "boom")
    with pytest.raises(RpcRemoteError) as info:
        s.run_until_settled(f)
    assert info.value.remote_type == "ValueError"
    assert "kaput" in info.value.remote_message


def test_unknown_service_and_method():
    s, _, a, b = make_pair()
    b.register("calc", Calc())
    f1 = a.call("b", "nope", "add", 1, 2)
    with pytest.raises(RpcRemoteError) as e1:
        s.run_until_settled(f1)
    assert e1.value.remote_type == "UnknownService"
    f2 = a.call("b", "calc", "subtract", 1, 2)
    with pytest.raises(RpcRemoteError) as e2:
        s.run_until_settled(f2)
    assert e2.value.remote_type == "UnknownMethod"


def test_private_methods_not_callable():
    s, _, a, b = make_pair()
    b.register("calc", Calc())
    f = a.call("b", "calc", "_secret")
    with pytest.raises(RpcRemoteError) as info:
        s.run_until_settled(f)
    assert info.value.remote_type == "UnknownMethod"


def test_call_to_dead_node_times_out():
    s, net, a, b = make_pair()
    b.register("calc", Calc())
    net.interface("b").up = False
    f = a.call("b", "calc", "add", 1, 2, timeout=0.5)
    with pytest.raises(RpcTimeout):
        s.run_until_settled(f)
    assert s.now >= 0.5


def test_callee_crash_mid_service_times_out():
    s, net, a, b = make_pair(latency=0.1)
    b.register("calc", Calc())
    f = a.call("b", "calc", "add", 1, 2, timeout=1.0)
    # Crash the callee after the request arrives but before it replies.
    # With zero service time the handler runs at delivery, so crash the
    # reply path instead: take b down right when the request is mid-flight.
    s.schedule(0.05, lambda: setattr(net.interface("b"), "up", False))
    with pytest.raises(RpcTimeout):
        s.run_until_settled(f)


def test_call_from_down_node_fails_immediately():
    s, net, a, b = make_pair()
    net.interface("a").up = False
    f = a.call("b", "calc", "add", 1, 2)
    assert f.failed
    with pytest.raises(RpcTimeout):
        f.result()


def test_generator_handler_runs_as_process():
    s, _, a, b = make_pair()

    class Slow:
        def work(self):
            yield Timeout(2.0)
            return "slept"

    b.register("slow", Slow())
    f = a.call("b", "slow", "work", timeout=10.0)
    assert s.run_until_settled(f) == "slept"
    assert s.now >= 2.0


def test_generator_handler_exception_propagates():
    s, _, a, b = make_pair()

    class Slow:
        def work(self):
            yield Timeout(0.5)
            raise KeyError("gen-fail")

    b.register("slow", Slow())
    f = a.call("b", "slow", "work", timeout=10.0)
    with pytest.raises(RpcRemoteError) as info:
        s.run_until_settled(f)
    assert info.value.remote_type == "KeyError"


def test_nested_rpc_from_generator_handler():
    s, _, a, b = make_pair()
    b.register("calc", Calc())

    class Proxy:
        def __init__(self, agent):
            self._agent = agent

        def forward(self, x, y):
            value = yield self._agent.call("b", "calc", "add", x, y)
            return value * 10

    a.register("proxy", Proxy(a))
    f = b.call("a", "proxy", "forward", 3, 4, timeout=5.0)
    assert s.run_until_settled(f) == 70


def test_service_time_delays_reply():
    s, _, a, b = make_pair(latency=0.0)
    b.service_time = 1.0
    b.register("calc", Calc())
    f = a.call("b", "calc", "add", 1, 1, timeout=10.0)
    s.run_until_settled(f)
    assert s.now >= 1.0


def test_service_time_queues_concurrent_requests():
    """A node with a service time is a single-server queue: two
    concurrent requests are processed one after the other."""
    s, _, a, b = make_pair(latency=0.0)
    b.service_time = 1.0
    b.register("calc", Calc())
    first = a.call("b", "calc", "add", 1, 1, timeout=10.0)
    second = a.call("b", "calc", "add", 2, 2, timeout=10.0)
    s.run_until_settled(first)
    assert 1.0 <= s.now < 2.0
    s.run_until_settled(second)
    assert s.now >= 2.0  # waited for the first to clear the CPU


def test_queued_requests_die_with_the_node():
    """Requests sitting in the service queue at crash time must not
    execute after the node recovers (fail-silence: the queue was
    volatile state)."""
    s, _, a, b = make_pair(latency=0.0)
    b.service_time = 1.0
    calc = Calc()
    b.register("calc", calc)
    f = a.call("b", "calc", "add", 1, 1, timeout=0.4)
    s.run(until=0.5)  # request queued at b, not yet executed
    b.reset()                   # the node crashes...
    b.register("calc", calc)    # ...and recovers before the event fires
    s.run(until=5.0)
    assert calc.calls == 0, "a queued request must not survive the crash"
    assert f.failed  # the caller saw a timeout, as fail-silence demands


def test_reset_fails_pending_and_clears_services():
    s, _, a, b = make_pair()
    b.register("calc", Calc())
    f = a.call("b", "calc", "add", 1, 2)
    a.reset()
    assert f.failed
    assert not b.has_service("calc") or True  # a's reset doesn't touch b
    b.reset()
    assert not b.has_service("calc")


def test_duplicate_service_registration_rejected():
    _, _, _, b = make_pair()
    b.register("calc", Calc())
    with pytest.raises(ValueError):
        b.register("calc", Calc())


def test_late_reply_after_timeout_is_ignored():
    s, net, a, b = make_pair(latency=0.1)
    b.service_time = 0.5
    b.register("calc", Calc())
    f = a.call("b", "calc", "add", 1, 2, timeout=0.2)
    with pytest.raises(RpcTimeout):
        s.run_until_settled(f)
    s.run()  # the late reply arrives; must not blow up or re-settle
    assert f.failed


def test_call_counters():
    s, _, a, b = make_pair()
    b.register("calc", Calc())
    f = a.call("b", "calc", "add", 1, 2)
    s.run_until_settled(f)
    assert a.calls_issued == 1
    assert b.calls_served == 1


# -- epoch fencing -----------------------------------------------------------


def make_fenced_pair(**kwargs):
    s, net, a, b = make_pair(**kwargs)
    calc = Calc()
    epoch = {"value": 3}
    b.register("calc", calc, fence=lambda: epoch["value"])
    return s, a, b, calc, epoch


def test_fenced_service_serves_a_matching_tag():
    s, a, b, calc, epoch = make_fenced_pair()
    f = a.call("b", "calc", "add", 2, 3, ring_epoch=3)
    assert s.run_until_settled(f) == 5
    assert calc.calls == 1
    assert b.calls_fenced == 0


def test_fenced_service_rejects_a_stale_tag_with_its_epoch():
    s, a, b, calc, epoch = make_fenced_pair()
    f = a.call("b", "calc", "add", 2, 3, ring_epoch=2)
    with pytest.raises(StaleRingEpoch) as info:
        s.run_until_settled(f)
    assert info.value.server_epoch == 3
    assert calc.calls == 0, "a fenced request must be rejected pre-dispatch"
    assert b.calls_fenced == 1


def test_untagged_requests_pass_a_fenced_service():
    s, a, b, calc, epoch = make_fenced_pair()
    f = a.call("b", "calc", "add", 1, 1)
    assert s.run_until_settled(f) == 2
    assert calc.calls == 1


def test_tagged_requests_pass_an_unfenced_service():
    s, _, a, b = make_pair()
    b.register("calc", Calc())
    f = a.call("b", "calc", "add", 1, 1, ring_epoch=99)
    assert s.run_until_settled(f) == 2


def test_fence_is_checked_at_dispatch_not_at_send():
    """The whole point of fencing over a settle window: a request that
    queued across an epoch change is rejected when it *executes*, even
    though its tag matched when it was sent."""
    s, a, b, calc, epoch = make_fenced_pair(service_time=0.2)
    ok = a.call("b", "calc", "add", 1, 1, ring_epoch=3, timeout=10.0)
    late = a.call("b", "calc", "add", 2, 2, ring_epoch=3, timeout=10.0)
    # The epoch moves while the second request sits in the service
    # queue behind the first.
    s.schedule(0.25, lambda: epoch.update(value=4))
    assert s.run_until_settled(ok) == 2
    with pytest.raises(StaleRingEpoch) as info:
        s.run_until_settled(late)
    assert info.value.server_epoch == 4
    assert calc.calls == 1


def test_reset_drops_the_fence_until_reregistration():
    s, a, b, calc, epoch = make_fenced_pair()
    b.reset()
    fresh = Calc()
    b.register("calc", fresh)  # recovered without re-arming the fence
    f = a.call("b", "calc", "add", 2, 3, ring_epoch=0)
    assert s.run_until_settled(f) == 5, \
        "an unfenced re-registration must serve (the fence died with it)"
    b.unregister("calc")
    b.register("calc", fresh, fence=lambda: epoch["value"])
    f = a.call("b", "calc", "add", 2, 3, ring_epoch=0)
    with pytest.raises(StaleRingEpoch):
        s.run_until_settled(f)


def test_unregister_clears_the_fence():
    s, a, b, calc, epoch = make_fenced_pair()
    b.unregister("calc")
    b.register("calc", calc)
    f = a.call("b", "calc", "add", 2, 3, ring_epoch=0)
    assert s.run_until_settled(f) == 5
