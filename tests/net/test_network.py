"""Tests for the simulated LAN."""

import pytest

from repro.net import FixedLatency, Network
from repro.sim import Scheduler, SeededRng


def make_net(latency=0.01, **kwargs):
    s = Scheduler()
    return s, Network(s, FixedLatency(latency), **kwargs)


def test_delivery_applies_latency():
    s, net = make_net(0.5)
    a, b = net.attach("a"), net.attach("b")
    received = []
    b.on_message = lambda m: received.append((s.now, m.payload))
    a.send("b", "k", "hello")
    s.run()
    assert received == [(0.5, "hello")]


def test_duplicate_interface_name_rejected():
    _, net = make_net()
    net.attach("a")
    with pytest.raises(ValueError):
        net.attach("a")


def test_down_sender_sends_nothing():
    s, net = make_net()
    a, b = net.attach("a"), net.attach("b")
    received = []
    b.on_message = received.append
    a.up = False
    assert a.send("b", "k", "x") is None
    s.run()
    assert received == []


def test_down_receiver_drops_message():
    s, net = make_net()
    a, b = net.attach("a"), net.attach("b")
    received = []
    b.on_message = received.append
    a.send("b", "k", "x")
    b.up = False
    s.run()
    assert received == []
    assert net.messages_dropped == 1


def test_receiver_crashing_mid_flight_drops():
    s, net = make_net(1.0)
    a, b = net.attach("a"), net.attach("b")
    received = []
    b.on_message = received.append
    a.send("b", "k", "x")
    s.schedule(0.5, lambda: setattr(b, "up", False))
    s.run()
    assert received == []


def test_unknown_target_dropped_silently():
    s, net = make_net()
    a = net.attach("a")
    a.send("ghost", "k", "x")
    s.run()
    assert net.messages_dropped == 1


def test_partition_blocks_cross_group_traffic():
    s, net = make_net()
    a, b, c = net.attach("a"), net.attach("b"), net.attach("c")
    got = {"b": [], "c": []}
    b.on_message = lambda m: got["b"].append(m.payload)
    c.on_message = lambda m: got["c"].append(m.payload)
    net.partition({"a", "b"}, {"c"})
    a.send("b", "k", "same-side")
    a.send("c", "k", "cross")
    s.run()
    assert got["b"] == ["same-side"]
    assert got["c"] == []


def test_heal_restores_traffic():
    s, net = make_net()
    a, b = net.attach("a"), net.attach("b")
    got = []
    b.on_message = lambda m: got.append(m.payload)
    net.partition({"a"}, {"b"})
    a.send("b", "k", "lost")
    s.run()
    net.heal()
    a.send("b", "k", "found")
    s.run()
    assert got == ["found"]


def test_unnamed_interfaces_form_implicit_group():
    s, net = make_net()
    net.attach("a")
    net.attach("x")
    net.attach("y")
    net.partition({"a"})
    assert net.reachable("x", "y")
    assert not net.reachable("a", "x")


def test_partition_with_unknown_name_rejected():
    _, net = make_net()
    net.attach("a")
    with pytest.raises(ValueError):
        net.partition({"a", "ghost"})


def test_drop_rules_target_specific_messages():
    s, net = make_net()
    a, b = net.attach("a"), net.attach("b")
    got = []
    b.on_message = lambda m: got.append(m.payload)
    net.add_drop_rule(lambda m: m.payload == "evil")
    a.send("b", "k", "good")
    a.send("b", "k", "evil")
    s.run()
    assert got == ["good"]
    net.clear_drop_rules()
    a.send("b", "k", "evil")
    s.run()
    assert got == ["good", "evil"]


def test_probabilistic_drop_is_seeded():
    def run(seed):
        s = Scheduler()
        net = Network(s, FixedLatency(0.01), drop_probability=0.5,
                      rng=SeededRng(seed))
        a, b = net.attach("a"), net.attach("b")
        got = []
        b.on_message = lambda m: got.append(m.payload)
        for i in range(100):
            a.send("b", "k", i)
        s.run()
        return got

    assert run(5) == run(5)
    assert 20 < len(run(5)) < 80


def test_drop_probability_requires_rng():
    with pytest.raises(ValueError):
        Network(Scheduler(), FixedLatency(), drop_probability=0.1)


def test_message_counters():
    s, net = make_net()
    a, b = net.attach("a"), net.attach("b")
    b.on_message = lambda m: None
    a.send("b", "k", 1)
    a.send("b", "k", 2)
    s.run()
    assert net.messages_sent == 2
    assert net.messages_delivered == 2
    assert a.sent_count == 2
    assert b.received_count == 2


def test_target_interface_latency_overrides_network_default():
    s, net = make_net(0.5)
    a = net.attach("a")
    b = net.attach("b.sync", latency=FixedLatency(0.05))
    received = []
    b.on_message = lambda m: received.append((s.now, m.payload))
    a.send("b.sync", "k", "fast-plane")
    s.run()
    assert received == [(0.05, "fast-plane")]


def test_sender_interface_latency_used_when_target_has_none():
    s, net = make_net(0.5)
    a = net.attach("a.sync", latency=FixedLatency(0.02))
    b = net.attach("b")
    received = []
    b.on_message = lambda m: received.append((s.now, m.payload))
    a.send("b", "k", "x")
    s.run()
    assert received == [(0.02, "x")]


def test_interface_throttle_spaces_out_a_burst():
    from repro.net import TokenBucket
    s, net = make_net(0.01)
    a = net.attach("a")
    b = net.attach("b", throttle=TokenBucket(rate=10.0, burst=1.0))
    received = []
    b.on_message = lambda m: received.append(s.now)
    for _ in range(3):
        a.send("b", "k", "x")
    s.run()
    # First message pays latency only; each further one queues an
    # extra 1/rate behind the bucket.
    assert received == [
        pytest.approx(0.01), pytest.approx(0.11), pytest.approx(0.21)]


def test_unthrottled_interfaces_share_no_bucket():
    from repro.net import TokenBucket
    s, net = make_net(0.01)
    a = net.attach("a")
    net.attach("b", throttle=TokenBucket(rate=10.0, burst=1.0))
    c = net.attach("c")
    received = []
    c.on_message = lambda m: received.append(s.now)
    for _ in range(3):
        a.send("c", "k", "x")
    s.run()
    assert received == [pytest.approx(0.01)] * 3
