"""Tests for message demultiplexing."""

import pytest

from repro.net import FixedLatency, MessageDemux, Network
from repro.sim import Scheduler


def test_longest_prefix_wins():
    s = Scheduler()
    net = Network(s, FixedLatency(0.0))
    a, b = net.attach("a"), net.attach("b")
    demux = MessageDemux(b)
    got = []
    demux.route("rpc.", lambda m: got.append(("general", m.kind)))
    demux.route("rpc.special", lambda m: got.append(("special", m.kind)))
    a.send("b", "rpc.request", None)
    a.send("b", "rpc.special.thing", None)
    s.run()
    assert got == [("general", "rpc.request"), ("special", "rpc.special.thing")]


def test_unrouted_kind_dropped():
    s = Scheduler()
    net = Network(s, FixedLatency(0.0))
    a, b = net.attach("a"), net.attach("b")
    demux = MessageDemux(b)
    got = []
    demux.route("known.", got.append)
    a.send("b", "unknown.kind", None)
    s.run()
    assert got == []


def test_duplicate_route_rejected():
    s = Scheduler()
    net = Network(s, FixedLatency(0.0))
    demux = MessageDemux(net.attach("n"))
    demux.route("x.", lambda m: None)
    with pytest.raises(ValueError):
        demux.route("x.", lambda m: None)
