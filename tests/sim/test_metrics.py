"""Tests for measurement instruments."""

import math

import pytest

from repro.sim import MetricsRegistry


def test_counter_increments():
    m = MetricsRegistry()
    m.counter("x").increment()
    m.counter("x").increment(4)
    assert m.counter_value("x") == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("x").increment(-1)


def test_counter_value_of_untouched_is_zero():
    assert MetricsRegistry().counter_value("nope") == 0


def test_gauge_moves_both_ways():
    g = MetricsRegistry().gauge("g")
    g.set(10)
    g.add(-3)
    assert g.value == 7


def test_histogram_statistics():
    h = MetricsRegistry().histogram("h")
    for v in [1.0, 2.0, 3.0, 4.0, 5.0]:
        h.observe(v)
    assert h.count == 5
    assert h.mean == 3.0
    assert h.minimum == 1.0
    assert h.maximum == 5.0
    assert h.percentile(50) == 3.0
    assert h.percentile(100) == 5.0


def test_histogram_empty_stats_are_nan():
    h = MetricsRegistry().histogram("h")
    assert math.isnan(h.mean)
    assert math.isnan(h.percentile(50))


def test_histogram_percentile_bounds():
    h = MetricsRegistry().histogram("h")
    h.observe(1.0)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_timeseries_time_weighted_mean():
    ts = MetricsRegistry().timeseries("availability")
    ts.record(0.0, 1.0)   # up
    ts.record(10.0, 0.0)  # down
    ts.record(15.0, 1.0)  # up again
    # 10 up + 5 down + 5 up over [0, 20] -> 15/20
    assert ts.time_weighted_mean(20.0) == pytest.approx(0.75)


def test_timeseries_values_between():
    ts = MetricsRegistry().timeseries("x")
    for t in range(10):
        ts.record(float(t), float(t * t))
    assert ts.values_between(2.0, 4.0) == [4.0, 9.0, 16.0]


def test_snapshot_contains_all_instruments():
    m = MetricsRegistry()
    m.counter("c").increment()
    m.gauge("g").set(2.5)
    m.histogram("h").observe(1.0)
    m.timeseries("t").record(0.0, 1.0)
    snap = m.snapshot()
    assert snap["c"] == 1
    assert snap["g"] == 2.5
    assert snap["h"]["count"] == 1
    assert snap["t"] == [(0.0, 1.0)]


def test_registry_returns_same_instrument():
    m = MetricsRegistry()
    assert m.counter("a") is m.counter("a")
    assert m.histogram("b") is m.histogram("b")


def test_wire_size_is_deterministic():
    from repro.sim.metrics import wire_size
    payload = {"method": "get_server", "args": ("sys:1",)}
    assert wire_size(payload) == wire_size(dict(payload))
    assert wire_size(payload) == len(repr(payload))


def test_plane_traffic_counters_land_in_the_snapshot():
    from repro.sim.metrics import MetricsRegistry
    m = MetricsRegistry()
    client = m.plane_traffic("alpha", "client")
    sync = m.plane_traffic("alpha", "sync")
    client.record_sent("req")
    client.record_received("rep")
    sync.record_sent("probe")
    snap = m.snapshot()
    from repro.sim.metrics import estimate_size
    assert snap["traffic.alpha.client.rpcs_out"] == 1
    assert snap["traffic.alpha.client.rpcs_in"] == 1
    assert snap["traffic.alpha.sync.rpcs_out"] == 1
    assert snap["traffic.alpha.client.bytes_out"] == estimate_size("req")
    # Counters are allocated eagerly (the hot path records by direct
    # attribute access), so an idle direction shows up as zero.
    assert snap["traffic.alpha.sync.rpcs_in"] == 0


def test_plane_traffic_read_properties_track_counters():
    from repro.sim.metrics import MetricsRegistry
    m = MetricsRegistry()
    t = m.plane_traffic("beta", "sync")
    assert (t.rpcs_out, t.rpcs_in) == (0, 0)
    t.record_sent("x")
    t.record_sent("y")
    t.record_received("z")
    assert (t.rpcs_out, t.rpcs_in) == (2, 1)
    from repro.sim.metrics import estimate_size
    assert t.bytes_out == 2 * estimate_size("x")
    assert t.bytes_in == estimate_size("z")
