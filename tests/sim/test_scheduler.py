"""Tests for the event scheduler and virtual clock."""

import pytest

from repro.sim import Scheduler, SimulationLimitExceeded


def test_clock_starts_at_zero():
    assert Scheduler().now == 0.0


def test_events_fire_in_time_order():
    s = Scheduler()
    fired = []
    s.schedule(2.0, fired.append, "b")
    s.schedule(1.0, fired.append, "a")
    s.schedule(3.0, fired.append, "c")
    s.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_times():
    s = Scheduler()
    times = []
    s.schedule(1.5, lambda: times.append(s.now))
    s.schedule(4.0, lambda: times.append(s.now))
    s.run()
    assert times == [1.5, 4.0]
    assert s.now == 4.0


def test_same_time_events_fire_in_scheduling_order():
    s = Scheduler()
    fired = []
    for tag in range(5):
        s.schedule(1.0, fired.append, tag)
    s.run()
    assert fired == [0, 1, 2, 3, 4]


def test_cancelled_event_does_not_fire():
    s = Scheduler()
    fired = []
    event = s.schedule(1.0, fired.append, "x")
    event.cancel()
    s.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    s = Scheduler()
    fired = []
    s.schedule(1.0, fired.append, "early")
    s.schedule(10.0, fired.append, "late")
    s.run(until=5.0)
    assert fired == ["early"]
    assert s.now == 5.0
    s.run()
    assert fired == ["early", "late"]


def test_cannot_schedule_in_the_past():
    s = Scheduler()
    s.schedule(1.0, lambda: None)
    s.run()
    with pytest.raises(ValueError):
        s.schedule_at(0.5, lambda: None)


def test_max_events_budget_raises():
    s = Scheduler()

    def reschedule():
        s.schedule(0.1, reschedule)

    s.schedule(0.1, reschedule)
    with pytest.raises(SimulationLimitExceeded):
        s.run(max_events=100)


def test_nested_scheduling_from_event():
    s = Scheduler()
    fired = []
    s.schedule(1.0, lambda: s.schedule(1.0, fired.append, "inner"))
    s.run()
    assert fired == ["inner"]
    assert s.now == 2.0


def test_call_soon_runs_at_current_time():
    s = Scheduler()
    times = []
    s.schedule(3.0, lambda: s.call_soon(lambda: times.append(s.now)))
    s.run()
    assert times == [3.0]


def test_events_fired_counter():
    s = Scheduler()
    for _ in range(4):
        s.schedule(1.0, lambda: None)
    s.run()
    assert s.events_fired == 4


def test_run_until_settled_returns_result():
    s = Scheduler()

    def body():
        yield 1.0
        return 42

    process = s.spawn(body())
    assert s.run_until_settled(process) == 42


def test_run_until_settled_raises_on_drained_queue():
    from repro.sim import Future
    s = Scheduler()
    never = Future("never")
    with pytest.raises(RuntimeError, match="drained"):
        s.run_until_settled(never)
