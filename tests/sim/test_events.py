"""Tests for the event queue's live-event accounting.

``__len__``/``__bool__`` sit on the scheduler's hot path, so they are
backed by a counter maintained by push/pop/cancel instead of a heap
scan; these tests pin the counter against every lifecycle edge.
"""

from repro.sim.events import Event, EventQueue


def make_event(time, seq):
    return Event(time, seq, lambda: None, ())


def test_empty_queue():
    q = EventQueue()
    assert len(q) == 0
    assert not q
    assert q.pop() is None
    assert q.peek_time() is None


def test_len_tracks_pushes_and_pops():
    q = EventQueue()
    for i in range(5):
        q.push(make_event(float(i), i))
    assert len(q) == 5 and q
    q.pop()
    q.pop()
    assert len(q) == 3


def test_cancel_updates_len_immediately():
    q = EventQueue()
    events = [make_event(float(i), i) for i in range(4)]
    for event in events:
        q.push(event)
    events[1].cancel()
    events[3].cancel()
    assert len(q) == 2
    assert q  # still live events


def test_cancelled_events_never_pop():
    q = EventQueue()
    first, second = make_event(1.0, 1), make_event(2.0, 2)
    q.push(first)
    q.push(second)
    first.cancel()
    assert q.pop() is second
    assert len(q) == 0 and not q


def test_cancel_is_idempotent():
    q = EventQueue()
    event = make_event(1.0, 1)
    q.push(event)
    q.push(make_event(2.0, 2))
    event.cancel()
    event.cancel()
    event.cancel()
    assert len(q) == 1


def test_cancel_after_fire_does_not_corrupt_count():
    """An RPC reply cancelling its already-fired timeout timer must not
    decrement the live count a second time."""
    q = EventQueue()
    timer = make_event(1.0, 1)
    q.push(timer)
    q.push(make_event(2.0, 2))
    fired = q.pop()
    assert fired is timer
    timer.cancel()  # late cancel of a fired event
    assert len(q) == 1
    assert q.pop() is not None
    assert len(q) == 0 and not q


def test_peek_time_skips_cancelled_without_changing_len():
    q = EventQueue()
    head, tail = make_event(1.0, 1), make_event(2.0, 2)
    q.push(head)
    q.push(tail)
    head.cancel()
    assert q.peek_time() == 2.0
    assert len(q) == 1


def test_all_cancelled_is_falsy():
    q = EventQueue()
    events = [make_event(float(i), i) for i in range(3)]
    for event in events:
        q.push(event)
    for event in events:
        event.cancel()
    assert len(q) == 0
    assert not q
    assert q.peek_time() is None
    assert q.pop() is None


def test_compaction_triggers_when_dead_outnumber_live():
    """Mass cancellation must rebuild the heap instead of holding an
    unbounded tail of tombstones (the every-RPC-cancels-its-timeout
    pattern of a long sweep)."""
    q = EventQueue()
    events = [make_event(float(i), i) for i in range(128)]
    for event in events:
        q.push(event)
    for event in events[:70]:
        event.cancel()
    assert q.compactions >= 1
    assert len(q) == 58
    # The rebuild happened at the threshold crossing; only the handful
    # of cancels after it may linger as tombstones.
    assert len(q._heap) < 70


def test_small_queues_never_compact():
    q = EventQueue()
    events = [make_event(float(i), i) for i in range(32)]
    for event in events:
        q.push(event)
    for event in events:
        event.cancel()
    assert q.compactions == 0
    assert len(q) == 0


def test_compaction_preserves_pop_order():
    q = EventQueue()
    events = [make_event(float(i % 7), i) for i in range(200)]
    for event in events:
        q.push(event)
    survivors = []
    for i, event in enumerate(events):
        if i % 3 == 0:
            survivors.append(event)
        else:
            event.cancel()
    assert q.compactions >= 1
    expected = sorted(survivors, key=lambda e: (e.time, e.seq))
    popped = []
    while q:
        popped.append(q.pop())
    assert popped == expected


def test_cancel_after_compaction_is_harmless():
    """An event dropped by a rebuild can still be cancelled late."""
    q = EventQueue()
    events = [make_event(float(i), i) for i in range(128)]
    for event in events:
        q.push(event)
    for event in events[:100]:
        event.cancel()
    assert q.compactions >= 1
    events[0].cancel()  # idempotent, already gone from the heap
    assert len(q) == 28
