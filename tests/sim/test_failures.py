"""Tests for fault injection."""

import pytest

from repro.sim import (
    CrashEvent,
    FaultPlan,
    FaultPlanError,
    Scheduler,
    SeededRng,
    StochasticFaultInjector,
)


class FakeTarget:
    def __init__(self, name):
        self.name = name
        self.crashed = False
        self.transitions = []

    def crash(self):
        self.crashed = True
        self.transitions.append("crash")

    def recover(self):
        self.crashed = False
        self.transitions.append("recover")


class FakeNetwork:
    """Records degrade/restore/block/unblock calls for assertions."""

    def __init__(self):
        self.calls = []

    def degrade(self, host, factor, drop=0.0):
        self.calls.append(("degrade", host, factor, drop))

    def restore(self, host):
        self.calls.append(("restore", host))

    def block(self, src, dst):
        self.calls.append(("block", src, dst))

    def unblock(self, src, dst):
        self.calls.append(("unblock", src, dst))


def test_crash_event_validates_kind():
    with pytest.raises(ValueError):
        CrashEvent(1.0, "n", "explode")


def test_fault_plan_outage():
    s = Scheduler()
    target = FakeTarget("n")
    plan = FaultPlan().outage(2.0, 5.0, "n")
    plan.install(s, {"n": target})
    s.run(until=3.0)
    assert target.crashed
    s.run()
    assert not target.crashed
    assert target.transitions == ["crash", "recover"]


def test_fault_plan_rejects_backwards_outage():
    with pytest.raises(ValueError):
        FaultPlan().outage(5.0, 2.0, "n")


def test_fault_plan_rejects_crash_of_crashed():
    plan = FaultPlan().crash_at(1.0, "n").crash_at(2.0, "n")
    with pytest.raises(FaultPlanError) as exc:
        plan.install(Scheduler(), {"n": FakeTarget("n")})
    assert exc.value.event.time == 2.0
    assert "already crashed" in exc.value.reason


def test_fault_plan_rejects_recover_of_live():
    plan = FaultPlan().recover_at(1.0, "n")
    with pytest.raises(FaultPlanError):
        plan.install(Scheduler(), {"n": FakeTarget("n")})


def test_fault_plan_rejects_degrade_of_crashed():
    plan = FaultPlan().crash_at(1.0, "n").degrade_at(2.0, "n", factor=5.0)
    with pytest.raises(FaultPlanError) as exc:
        plan.install(Scheduler(), {"n": FakeTarget("n")},
                     network=FakeNetwork())
    assert "cannot degrade" in exc.value.reason


def test_fault_plan_error_is_a_value_error():
    with pytest.raises(ValueError):
        FaultPlan().recover_at(1.0, "n").validate()


def test_fault_plan_network_events_need_a_network():
    plan = FaultPlan().gray(1.0, 2.0, "n", factor=5.0)
    with pytest.raises(ValueError, match="no network"):
        plan.install(Scheduler(), {"n": FakeTarget("n")})


def test_fault_plan_gray_window_drives_the_network():
    s = Scheduler()
    net = FakeNetwork()
    plan = FaultPlan().gray(1.0, 3.0, "n", factor=20.0, drop=0.25)
    plan.install(s, {"n": FakeTarget("n")}, network=net)
    s.run()
    assert net.calls == [("degrade", "n", 20.0, 0.25), ("restore", "n")]


def test_fault_plan_partial_partition_is_directional():
    s = Scheduler()
    net = FakeNetwork()
    plan = FaultPlan().partial_partition(1.0, 2.0, "a", "b")
    plan.install(s, {"a": FakeTarget("a"), "b": FakeTarget("b")}, network=net)
    s.run()
    assert net.calls == [("block", "a", "b"), ("unblock", "a", "b")]


def test_fault_plan_skew_flips_the_lease_anchor():
    class FakeCache:
        anchor = "send"

    s = Scheduler()
    cache, other = FakeCache(), FakeCache()
    plan = FaultPlan().skew_at(1.0, "c1").unskew_at(5.0, "c1")
    plan.install(s, {"c1": FakeTarget("c1")},
                 caches={"c1": cache, "c1+": cache, "c2": other})
    s.run(until=2.0)
    assert cache.anchor == "receive"
    assert other.anchor == "send"
    s.run()
    assert cache.anchor == "send"


def test_stochastic_injector_crashes_and_repairs():
    s = Scheduler()
    rng = SeededRng(11)
    target = FakeTarget("n")
    injector = StochasticFaultInjector(s, rng, mean_time_to_failure=5.0,
                                       mean_time_to_repair=1.0,
                                       stop_after=200.0)
    injector.attach(target)
    s.run(until=250.0)
    assert injector.crashes_injected > 5
    assert injector.recoveries_injected > 5
    assert target.transitions[0] == "crash"


def test_stochastic_injector_without_repair_crashes_once():
    s = Scheduler()
    target = FakeTarget("n")
    injector = StochasticFaultInjector(s, SeededRng(3),
                                       mean_time_to_failure=1.0,
                                       stop_after=100.0)
    injector.attach(target)
    s.run(until=150.0)
    assert target.transitions == ["crash"]


def test_stochastic_injector_is_deterministic():
    def run(seed):
        s = Scheduler()
        target = FakeTarget("n")
        injector = StochasticFaultInjector(s, SeededRng(seed), 5.0, 1.0,
                                           stop_after=100.0)
        injector.attach(target)
        s.run(until=150.0)
        return injector.crashes_injected

    assert run(1) == run(1)


def test_stochastic_injector_rejects_bad_mttf():
    with pytest.raises(ValueError):
        StochasticFaultInjector(Scheduler(), SeededRng(1), 0.0)


def test_stochastic_injector_repair_time_distribution():
    """Downtimes are exponential with the configured mean."""
    s = Scheduler()
    target = FakeTarget("n")
    injector = StochasticFaultInjector(s, SeededRng(7),
                                       mean_time_to_failure=2.0,
                                       mean_time_to_repair=1.5,
                                       stop_after=5000.0)
    injector.attach(target)
    s.run(until=6000.0)
    ups = {}
    downtimes = []
    for when, _name, kind in injector.timeline:
        if kind == "crash":
            ups["n"] = when
        elif kind == "recover":
            downtimes.append(when - ups.pop("n"))
    assert len(downtimes) > 200
    mean = sum(downtimes) / len(downtimes)
    assert 1.5 * 0.85 < mean < 1.5 * 1.15
    # Exponential, not constant: wide spread around the mean.
    assert min(downtimes) < 0.2 and max(downtimes) > 4.0


def test_stochastic_injector_stop_after_cutoff():
    """No transition is injected past the stop_after horizon."""
    s = Scheduler()
    target = FakeTarget("n")
    injector = StochasticFaultInjector(s, SeededRng(5),
                                       mean_time_to_failure=3.0,
                                       mean_time_to_repair=1.0,
                                       stop_after=50.0)
    injector.attach(target)
    s.run(until=500.0)
    assert injector.timeline, "expected at least one injected fault"
    crash_times = [t for t, _n, kind in injector.timeline if kind == "crash"]
    assert max(crash_times) <= 50.0
    # Recoveries may trail a pre-cutoff crash, but nothing new starts.
    assert all(kind in ("crash", "recover")
               for _t, _n, kind in injector.timeline)


def test_stochastic_injector_timeline_is_bitwise_deterministic():
    """Same seed -> identical timeline, including gray draws."""

    def run(seed):
        s = Scheduler()
        net = FakeNetwork()
        targets = [FakeTarget("a"), FakeTarget("b")]
        injector = StochasticFaultInjector(
            s, SeededRng(seed), mean_time_to_failure=4.0,
            mean_time_to_repair=1.0, stop_after=300.0,
            network=net, gray_probability=0.5, degrade_factor=25.0)
        injector.attach_all(targets)
        s.run(until=400.0)
        return injector.timeline

    first, second = run(13), run(13)
    assert first == second
    assert first != run(14)
    kinds = {kind for _t, _n, kind in first}
    assert "degrade" in kinds and "crash" in kinds


def test_stochastic_injector_gray_faults_degrade_and_restore():
    s = Scheduler()
    net = FakeNetwork()
    target = FakeTarget("n")
    injector = StochasticFaultInjector(
        s, SeededRng(21), mean_time_to_failure=3.0,
        mean_time_to_repair=1.0, stop_after=200.0,
        network=net, gray_probability=1.0,
        degrade_factor=10.0, degrade_drop=0.1)
    injector.attach(target)
    s.run(until=300.0)
    assert injector.grays_injected > 5
    assert injector.restores_injected > 5
    assert injector.crashes_injected == 0
    assert target.transitions == []  # gray means up-but-slow, never down
    assert ("degrade", "n", 10.0, 0.1) in net.calls
    assert ("restore", "n") in net.calls


def test_stochastic_injector_gray_needs_network():
    with pytest.raises(ValueError, match="need a network"):
        StochasticFaultInjector(Scheduler(), SeededRng(1), 1.0,
                                gray_probability=0.5)
