"""Tests for fault injection."""

import pytest

from repro.sim import (
    CrashEvent,
    FaultPlan,
    Scheduler,
    SeededRng,
    StochasticFaultInjector,
)


class FakeTarget:
    def __init__(self, name):
        self.name = name
        self.crashed = False
        self.transitions = []

    def crash(self):
        self.crashed = True
        self.transitions.append("crash")

    def recover(self):
        self.crashed = False
        self.transitions.append("recover")


def test_crash_event_validates_kind():
    with pytest.raises(ValueError):
        CrashEvent(1.0, "n", "explode")


def test_fault_plan_outage():
    s = Scheduler()
    target = FakeTarget("n")
    plan = FaultPlan().outage(2.0, 5.0, "n")
    plan.install(s, {"n": target})
    s.run(until=3.0)
    assert target.crashed
    s.run()
    assert not target.crashed
    assert target.transitions == ["crash", "recover"]


def test_fault_plan_rejects_backwards_outage():
    with pytest.raises(ValueError):
        FaultPlan().outage(5.0, 2.0, "n")


def test_fault_plan_crash_is_idempotent():
    s = Scheduler()
    target = FakeTarget("n")
    plan = FaultPlan().crash_at(1.0, "n").crash_at(2.0, "n")
    plan.install(s, {"n": target})
    s.run()
    assert target.transitions == ["crash"]


def test_fault_plan_recover_without_crash_is_noop():
    s = Scheduler()
    target = FakeTarget("n")
    FaultPlan().recover_at(1.0, "n").install(s, {"n": target})
    s.run()
    assert target.transitions == []


def test_stochastic_injector_crashes_and_repairs():
    s = Scheduler()
    rng = SeededRng(11)
    target = FakeTarget("n")
    injector = StochasticFaultInjector(s, rng, mean_time_to_failure=5.0,
                                       mean_time_to_repair=1.0,
                                       stop_after=200.0)
    injector.attach(target)
    s.run(until=250.0)
    assert injector.crashes_injected > 5
    assert injector.recoveries_injected > 5
    assert target.transitions[0] == "crash"


def test_stochastic_injector_without_repair_crashes_once():
    s = Scheduler()
    target = FakeTarget("n")
    injector = StochasticFaultInjector(s, SeededRng(3),
                                       mean_time_to_failure=1.0,
                                       stop_after=100.0)
    injector.attach(target)
    s.run(until=150.0)
    assert target.transitions == ["crash"]


def test_stochastic_injector_is_deterministic():
    def run(seed):
        s = Scheduler()
        target = FakeTarget("n")
        injector = StochasticFaultInjector(s, SeededRng(seed), 5.0, 1.0,
                                           stop_after=100.0)
        injector.attach(target)
        s.run(until=150.0)
        return injector.crashes_injected

    assert run(1) == run(1)


def test_stochastic_injector_rejects_bad_mttf():
    with pytest.raises(ValueError):
        StochasticFaultInjector(Scheduler(), SeededRng(1), 0.0)
