"""Tests for structured tracing."""

from repro.sim import Scheduler, Tracer


def test_records_carry_time_and_data():
    s = Scheduler()
    tracer = Tracer()
    tracer.bind_clock(lambda: s.now)
    s.schedule(2.5, lambda: tracer.record("cat", "hello", key="value"))
    s.run()
    assert len(tracer.events) == 1
    event = tracer.events[0]
    assert event.time == 2.5
    assert event.category == "cat"
    assert event.data == {"key": "value"}


def test_category_filtering_drops_others():
    tracer = Tracer(categories={"keep"})
    tracer.record("keep", "a")
    tracer.record("drop", "b")
    assert tracer.messages() == ["a"]


def test_none_categories_records_everything():
    tracer = Tracer(categories=None)
    tracer.record("x", "a")
    tracer.record("y", "b")
    assert tracer.count("x") == 1
    assert tracer.count("y") == 1


def test_filter_and_messages():
    tracer = Tracer()
    tracer.record("a", "m1")
    tracer.record("b", "m2")
    tracer.record("a", "m3")
    assert [e.message for e in tracer.filter("a")] == ["m1", "m3"]
    assert tracer.messages("b") == ["m2"]


def test_clear():
    tracer = Tracer()
    tracer.record("a", "m")
    tracer.clear()
    assert tracer.events == []


def test_str_rendering():
    tracer = Tracer()
    tracer.record("cat", "message", k=1)
    text = str(tracer.events[0])
    assert "cat" in text and "message" in text and "k" in text
