"""Tests for seeded random streams."""

import pytest

from repro.sim import SeededRng


def test_same_seed_same_sequence():
    a, b = SeededRng(1), SeededRng(1)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a, b = SeededRng(1), SeededRng(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_substream_independent_of_creation_order():
    root1 = SeededRng(9)
    x1 = root1.substream("x")
    y1 = root1.substream("y")
    root2 = SeededRng(9)
    y2 = root2.substream("y")
    x2 = root2.substream("x")
    assert x1.random() == x2.random()
    assert y1.random() == y2.random()


def test_substream_paths_nest():
    a = SeededRng(3).substream("net").substream("latency")
    b = SeededRng(3).substream("net").substream("latency")
    c = SeededRng(3).substream("latency")
    assert a.random() == b.random()
    assert a.name == "root/net/latency"
    assert c.name != a.name


def test_exponential_positive_and_mean_reasonable():
    rng = SeededRng(4)
    draws = [rng.exponential(10.0) for _ in range(2000)]
    assert all(d > 0 for d in draws)
    mean = sum(draws) / len(draws)
    assert 8.0 < mean < 12.0


def test_exponential_rejects_bad_mean():
    with pytest.raises(ValueError):
        SeededRng(1).exponential(0.0)


def test_chance_bounds():
    rng = SeededRng(5)
    assert not any(rng.chance(0.0) for _ in range(100))
    assert all(rng.chance(1.0 - 1e-12) for _ in range(100))
    with pytest.raises(ValueError):
        rng.chance(1.5)


def test_uniform_within_bounds():
    rng = SeededRng(6)
    for _ in range(100):
        v = rng.uniform(2.0, 3.0)
        assert 2.0 <= v <= 3.0


def test_shuffled_does_not_mutate_input():
    rng = SeededRng(7)
    original = [1, 2, 3, 4, 5]
    shuffled = rng.shuffled(original)
    assert original == [1, 2, 3, 4, 5]
    assert sorted(shuffled) == original


def test_sample_and_choice():
    rng = SeededRng(8)
    population = list(range(20))
    picked = rng.sample(population, 5)
    assert len(picked) == 5
    assert len(set(picked)) == 5
    assert rng.choice(population) in population


def test_randint_inclusive():
    rng = SeededRng(9)
    values = {rng.randint(1, 3) for _ in range(200)}
    assert values == {1, 2, 3}
