"""Tests for generator-based processes."""

import pytest

from repro.sim import Future, ProcessKilled, Scheduler, Timeout


def test_process_sleeps_and_returns():
    s = Scheduler()

    def body():
        yield Timeout(2.0)
        return "done"

    p = s.spawn(body())
    s.run()
    assert p.result() == "done"
    assert s.now == 2.0


def test_bare_number_yield_means_sleep():
    s = Scheduler()

    def body():
        yield 1.5
        yield 1  # int also accepted
        return s.now

    p = s.spawn(body())
    s.run()
    assert p.result() == 2.5


def test_process_waits_on_future():
    s = Scheduler()
    gate = Future("gate")

    def body():
        value = yield gate
        return value * 2

    p = s.spawn(body())
    s.schedule(3.0, gate.resolve, 21)
    s.run()
    assert p.result() == 42


def test_failed_future_is_thrown_into_process():
    s = Scheduler()
    gate = Future()

    def body():
        try:
            yield gate
        except ValueError as exc:
            return f"caught {exc}"

    p = s.spawn(body())
    s.schedule(1.0, gate.fail, ValueError("bang"))
    s.run()
    assert p.result() == "caught bang"


def test_escaped_exception_fails_the_process():
    s = Scheduler()

    def body():
        yield Timeout(1.0)
        raise RuntimeError("oops")

    p = s.spawn(body())
    s.run()
    assert p.failed
    with pytest.raises(RuntimeError, match="oops"):
        p.result()


def test_process_waits_on_another_process():
    s = Scheduler()

    def child():
        yield Timeout(2.0)
        return "child-value"

    def parent():
        value = yield s.spawn(child())
        return f"got {value}"

    p = s.spawn(parent())
    s.run()
    assert p.result() == "got child-value"


def test_kill_while_sleeping():
    s = Scheduler()
    progress = []

    def body():
        progress.append("start")
        yield Timeout(10.0)
        progress.append("never")

    p = s.spawn(body())
    s.schedule(1.0, p.kill)
    s.run()
    assert p.failed
    assert isinstance(p.exception(), ProcessKilled)
    assert progress == ["start"]
    assert s.now < 10.0


def test_kill_lets_generator_clean_up():
    s = Scheduler()
    cleaned = []

    def body():
        try:
            yield Timeout(10.0)
        except ProcessKilled:
            cleaned.append(True)
            raise

    p = s.spawn(body())
    s.schedule(1.0, p.kill)
    s.run()
    assert cleaned == [True]
    assert p.failed


def test_swallowing_kill_still_terminates():
    s = Scheduler()

    def body():
        while True:
            try:
                yield Timeout(1.0)
            except ProcessKilled:
                pass  # naughty: tries to survive

    p = s.spawn(body())
    s.schedule(2.5, p.kill)
    s.run(until=20.0)
    assert p.done and p.failed


def test_kill_terminated_process_is_noop():
    s = Scheduler()

    def body():
        yield 0.5
        return 1

    p = s.spawn(body())
    s.run()
    p.kill()
    assert p.result() == 1


def test_yielding_garbage_fails_process():
    s = Scheduler()

    def body():
        yield "not a future"

    p = s.spawn(body())
    s.run()
    assert p.failed
    assert isinstance(p.exception(), TypeError)


def test_stale_future_wakeup_after_kill_is_ignored():
    s = Scheduler()
    gate = Future()

    def body():
        yield gate

    p = s.spawn(body())
    s.schedule(1.0, p.kill)
    s.schedule(2.0, gate.resolve, "late")
    s.run()
    assert p.failed
    assert isinstance(p.exception(), ProcessKilled)
