"""Tests for futures and combinators."""

import pytest

from repro.sim import Future, FutureState, all_of, any_of


def test_future_lifecycle():
    f = Future("x")
    assert f.pending and not f.done
    f.resolve(5)
    assert f.done and not f.failed
    assert f.result() == 5
    assert f.state is FutureState.RESOLVED


def test_future_failure():
    f = Future()
    error = ValueError("boom")
    f.fail(error)
    assert f.failed
    with pytest.raises(ValueError, match="boom"):
        f.result()
    assert f.exception() is error


def test_double_settle_raises():
    f = Future()
    f.resolve(1)
    with pytest.raises(RuntimeError):
        f.resolve(2)
    with pytest.raises(RuntimeError):
        f.fail(ValueError())


def test_try_resolve_and_try_fail():
    f = Future()
    assert f.try_resolve(1) is True
    assert f.try_resolve(2) is False
    assert f.try_fail(ValueError()) is False
    assert f.result() == 1


def test_result_on_pending_raises():
    with pytest.raises(RuntimeError, match="pending"):
        Future("p").result()


def test_callback_after_settle_runs_immediately():
    f = Future()
    f.resolve("v")
    seen = []
    f.add_callback(lambda fut: seen.append(fut.result()))
    assert seen == ["v"]


def test_callbacks_run_once_in_order():
    f = Future()
    seen = []
    f.add_callback(lambda _: seen.append(1))
    f.add_callback(lambda _: seen.append(2))
    f.resolve(None)
    assert seen == [1, 2]


def test_all_of_collects_in_input_order():
    a, b = Future("a"), Future("b")
    combined = all_of([a, b])
    b.resolve("B")
    assert combined.pending
    a.resolve("A")
    assert combined.result() == ["A", "B"]


def test_all_of_empty_resolves_immediately():
    assert all_of([]).result() == []


def test_all_of_fails_fast():
    a, b = Future(), Future()
    combined = all_of([a, b])
    a.fail(ValueError("first"))
    assert combined.failed
    b.resolve("late")  # must not blow up
    with pytest.raises(ValueError, match="first"):
        combined.result()


def test_any_of_first_success_wins():
    a, b = Future(), Future()
    combined = any_of([a, b])
    b.resolve("B")
    assert combined.result() == (1, "B")
    a.resolve("A")  # late winner ignored


def test_any_of_all_failures_fails():
    a, b = Future(), Future()
    combined = any_of([a, b])
    a.fail(ValueError("a"))
    assert combined.pending
    b.fail(ValueError("b"))
    with pytest.raises(ValueError, match="b"):
        combined.result()


def test_any_of_empty_fails():
    assert any_of([]).failed
