"""Tests for coordinator-cohort replication (section 2.3(ii))."""

from repro import CoordinatorCohortReplication

from tests.conftest import add_work, build_system, get_work


def test_only_coordinator_processes():
    system, client, uid = build_system(CoordinatorCohortReplication())
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    # Cohorts received a checkpoint, not invocations.
    s1 = system.nodes["s1"].rpc.service("servers")
    s2 = system.nodes["s2"].rpc.service("servers")
    assert s1._server(str(uid)).invocations > 0
    assert s2._server(str(uid)).invocations == 0


def test_checkpoint_keeps_cohorts_current():
    system, client, uid = build_system(CoordinatorCohortReplication())
    system.run_transaction(client, add_work(uid, 5))
    for host in ("s2", "s3"):
        server_host = system.nodes[host].rpc.service("servers")
        buffer, version = server_host.get_state(str(uid))
        assert version == 2


def test_failover_before_write_is_masked():
    system, client, uid = build_system(CoordinatorCohortReplication())

    def work(txn):
        v1 = yield from txn.invoke(uid, "get")
        system.nodes["s1"].crash()
        v2 = yield from txn.invoke(uid, "get")  # cohort s2 takes over
        return (v1, v2)

    result = system.run_transaction(client, work)
    assert result.committed
    assert result.value == (100, 100)
    assert system.metrics.counter_value(
        "policy.coordinator_cohort.failovers_masked") == 1


def test_coordinator_crash_after_write_aborts():
    system, client, uid = build_system(CoordinatorCohortReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["s1"].crash()
        yield from txn.invoke(uid, "add", 1)

    result = system.run_transaction(client, work)
    assert not result.committed
    assert result.reason.startswith("coordinator_lost_dirty")


def test_retry_after_dirty_abort_succeeds_on_cohort():
    """Availability preserved: the restarted action finds a cohort."""
    system, client, uid = build_system(CoordinatorCohortReplication())
    system.run_transaction(client, add_work(uid, 1))  # checkpoint at 101

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["s1"].crash()
        yield from txn.invoke(uid, "add", 1)

    aborted = system.run_transaction(client, work)
    assert not aborted.committed
    retry = system.run_transaction(client, add_work(uid, 1))
    assert retry.committed
    final = system.run_transaction(client, get_work(uid))
    assert final.value == 102  # 101 + the successful retry only


def test_all_replicas_crashed_aborts():
    system, client, uid = build_system(CoordinatorCohortReplication())

    def work(txn):
        yield from txn.invoke(uid, "get")
        for host in ("s1", "s2", "s3"):
            system.nodes[host].crash()
        yield from txn.invoke(uid, "get")

    result = system.run_transaction(client, work)
    assert not result.committed


def test_chain_of_failovers():
    system, client, uid = build_system(CoordinatorCohortReplication())

    def work(txn):
        yield from txn.invoke(uid, "get")
        system.nodes["s1"].crash()
        yield from txn.invoke(uid, "get")   # s2 takes over
        system.nodes["s2"].crash()
        v = yield from txn.invoke(uid, "get")  # s3 takes over
        return v

    result = system.run_transaction(client, work)
    assert result.committed
    assert result.value == 100
    assert system.metrics.counter_value(
        "policy.coordinator_cohort.failovers_masked") == 2
