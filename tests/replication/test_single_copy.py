"""Tests for single-copy passive replication (figures 2 and 3)."""

from repro import SingleCopyPassive

from tests.conftest import add_work, build_system, get_work


def test_binds_exactly_one_server():
    system, client, uid = build_system(SingleCopyPassive())

    def work(txn):
        yield from txn.invoke(uid, "get")
        return list(txn.bindings[uid].live_hosts)

    result = system.run_transaction(client, work)
    assert len(result.value) == 1


def test_server_crash_mid_action_aborts():
    """Figure 2/3 rule: the action must abort if alpha is down."""
    system, client, uid = build_system(SingleCopyPassive())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["s1"].crash()
        yield from txn.invoke(uid, "add", 1)

    result = system.run_transaction(client, work)
    assert not result.committed
    assert result.reason.startswith("server_crashed")
    # Failure atomicity: no store saw any of it.
    assert set(system.store_versions(uid).values()) == {1}


def test_restart_after_crash_activates_new_copy():
    """'Restarting the action will result in a new copy being activated.'"""
    system, client, uid = build_system(SingleCopyPassive())
    system.run_transaction(client, add_work(uid, 1))
    system.nodes["s1"].crash()
    retry = system.run_transaction(client, add_work(uid, 1))
    assert retry.committed  # bound s2 instead
    final = system.run_transaction(client, get_work(uid))
    assert final.value == 102


def test_commit_copies_state_to_all_st_nodes():
    """Figure 3: |St| > 1, commit writes every store."""
    system, client, uid = build_system(SingleCopyPassive(), st=("t1", "t2"))
    system.run_transaction(client, add_work(uid, 1))
    versions = system.store_versions(uid)
    assert versions == {"t1": 2, "t2": 2}


def test_all_stores_down_aborts():
    system, client, uid = build_system(SingleCopyPassive(), st=("t1", "t2"))
    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["t1"].crash()
        system.nodes["t2"].crash()
    result = system.run_transaction(client, work)
    assert not result.committed


def test_one_store_down_commits_and_excludes():
    system, client, uid = build_system(SingleCopyPassive(), st=("t1", "t2"))
    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["t2"].crash()
    result = system.run_transaction(client, work)
    assert result.committed
    assert system.db_st(uid) == ["t1"]
    assert system.metrics.counter_value("commit.stores_excluded") == 1


def test_activation_falls_back_across_stores():
    """A server may load the state from any St node (figure 3)."""
    system, client, uid = build_system(SingleCopyPassive(), st=("t1", "t2"))
    system.nodes["t1"].crash()  # activation must use t2
    result = system.run_transaction(client, get_work(uid))
    assert result.committed
    assert result.value == 100
