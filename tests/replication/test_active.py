"""Tests for active replication (figure 4 and section 2.3(i))."""

from repro import ActiveReplication

from tests.conftest import add_work, build_system, get_work


def test_all_replicas_execute_every_invocation():
    system, client, uid = build_system(ActiveReplication(), sv=("s1", "s2", "s3"))
    result = system.run_transaction(client, add_work(uid, 7))
    assert result.committed
    assert result.value == 107
    # Every server host executed the op: check their servers' states agree.
    states = []
    for host in ("s1", "s2", "s3"):
        server_host = system.nodes[host].rpc.service("servers")
        if server_host.has_server(str(uid)):
            buffer, version = server_host.get_state(str(uid))
            states.append((host, version))
    assert len(states) == 3
    assert len({v for _, v in states}) == 1


def test_degree_limits_activation():
    system, client, uid = build_system(ActiveReplication(degree=2))

    def work(txn):
        yield from txn.invoke(uid, "get")
        return list(txn.bindings[uid].live_hosts)

    result = system.run_transaction(client, work)
    assert len(result.value) == 2


def test_replica_crash_is_masked():
    """Up to k-1 replica failures masked during the action."""
    system, client, uid = build_system(ActiveReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["s2"].crash()
        v = yield from txn.invoke(uid, "add", 1)
        return v

    result = system.run_transaction(client, work)
    assert result.committed
    assert result.value == 102
    assert system.metrics.counter_value("policy.active.replicas_masked") >= 1


def test_two_crashes_of_three_still_masked():
    system, client, uid = build_system(ActiveReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["s2"].crash()
        system.nodes["s3"].crash()
        v = yield from txn.invoke(uid, "add", 1)
        return v

    result = system.run_transaction(client, work)
    assert result.committed
    assert result.value == 102


def test_sequencer_crash_aborts():
    """The first bound replica sequences; losing it loses the group."""
    system, client, uid = build_system(ActiveReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        system.nodes["s1"].crash()  # s1 is the sequencer
        yield from txn.invoke(uid, "add", 1)

    result = system.run_transaction(client, work)
    assert not result.committed


def test_all_replicas_crashed_aborts():
    system, client, uid = build_system(ActiveReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        for host in ("s1", "s2", "s3"):
            system.nodes[host].crash()
        yield from txn.invoke(uid, "add", 1)

    result = system.run_transaction(client, work)
    assert not result.committed
    assert set(system.store_versions(uid).values()) == {1}


def test_commit_state_from_surviving_replica():
    system, client, uid = build_system(ActiveReplication())

    def work(txn):
        yield from txn.invoke(uid, "add", 5)
        system.nodes["s1"].crash()  # crash AFTER the write round
        # no further invocations; commit must fetch state from s2/s3

    result = system.run_transaction(client, work)
    assert result.committed
    assert set(system.store_versions(uid).values()) == {2}
    check = system.run_transaction(client, get_work(uid))
    assert check.value == 105


def test_second_client_binds_to_same_group():
    system, client, uid = build_system(ActiveReplication())
    client2 = system.add_client("c2", policy=ActiveReplication())
    r1 = system.run_transaction(client, add_work(uid, 1))
    r2 = system.run_transaction(client2, add_work(uid, 1))
    assert r1.committed and r2.committed
    final = system.run_transaction(client, get_work(uid))
    assert final.value == 102
