"""Edge-case tests for commit-time state distribution (section 4.2)."""

from repro import SingleCopyPassive

from tests.conftest import add_work, build_system, get_work


def test_late_store_crash_between_phases_is_heuristically_excluded():
    """t2 crashes after write_shadow but before commit_shadow: the
    follow-up exclusion action removes it from St."""
    system, client, uid = build_system(st=("t1", "t2"),
                                       enable_recovery_managers=False)
    # Crash t2 exactly between the phases: write_shadow happens during
    # prepare; we hook the moment via a scheduled crash timed after the
    # prepare RPCs but before commit ones.  Easiest reliable hook: crash
    # when t2's store first holds a shadow.
    t2_store = system.nodes["t2"].object_store
    original_write = t2_store.write_shadow

    def write_and_die(uid_, buffer, version):
        original_write(uid_, buffer, version)
        system.scheduler.call_soon(system.nodes["t2"].crash)

    t2_store.write_shadow = write_and_die
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    assert system.db_st(uid) == ["t1"]
    assert system.metrics.counter_value("commit.late_exclusions") == 1
    # t1 carries the commit; consistency among *included* stores holds.
    assert system.store_versions(uid)["t1"] == 2


def test_durability_loss_window_is_counted():
    """|St| = 1 and the only store dies between phases: the decided
    state is lost; the system records it rather than hiding it."""
    system, client, uid = build_system(st=("t1",),
                                       enable_recovery_managers=False)
    t1_store = system.nodes["t1"].object_store
    original_write = t1_store.write_shadow

    def write_and_die(uid_, buffer, version):
        original_write(uid_, buffer, version)
        system.scheduler.call_soon(system.nodes["t1"].crash)

    t1_store.write_shadow = write_and_die
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed  # 2PC had decided
    assert system.metrics.counter_value("commit.durability_lost") == 1


def test_source_server_crash_during_prepare_falls_back():
    """Active replication: the state-fetch source dies at commit time;
    the record falls back to another live replica."""
    from repro import ActiveReplication
    system, client, uid = build_system(ActiveReplication(), st=("t1",))

    def work(txn):
        yield from txn.invoke(uid, "add", 5)
        system.nodes["s1"].crash()  # preferred source for get_state

    result = system.run_transaction(client, work)
    assert result.committed
    assert system.store_versions(uid)["t1"] == 2


def test_abort_discards_all_shadows():
    system, client, uid = build_system(st=("t1", "t2"))

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        txn.abort("nope")

    system.run_transaction(client, work)
    for host in ("t1", "t2"):
        store = system.nodes[host].object_store
        assert not store.has_shadow(uid)
        assert store.version_of(uid) == 1


def test_readonly_transaction_attaches_no_distribution_record():
    system, client, uid = build_system(st=("t1", "t2"))
    before = {h: system.nodes[h].object_store.commits for h in ("t1", "t2")}
    system.run_transaction(client, get_work(uid), read_only=True)
    after = {h: system.nodes[h].object_store.commits for h in ("t1", "t2")}
    assert before == after


def test_exclusion_metrics():
    system, client, uid = build_system(st=("t1", "t2"))
    system.nodes["t2"].crash()
    system.run_transaction(client, add_work(uid, 1))
    assert system.metrics.counter_value("commit.stores_excluded") == 1
    assert system.metrics.counter_value("commit.late_exclusions") == 0


def test_version_chain_monotonic_across_many_commits():
    system, client, uid = build_system(st=("t1", "t2"))
    for expected in range(2, 8):
        system.run_transaction(client, add_work(uid, 1))
        versions = set(system.store_versions(uid).values())
        assert versions == {expected}
