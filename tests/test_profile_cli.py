"""The profiling harness CLI: listing, validation, wiring."""

import pytest

from repro import profile as profile_cli


def test_list_prints_every_scenario(capsys):
    assert profile_cli.main(["--list"]) == 0
    out = capsys.readouterr().out.split()
    assert out == sorted(profile_cli.SCENARIOS)
    assert "commit_batching" in out


def test_no_scenario_lists_and_signals_usage(capsys):
    assert profile_cli.main([]) == 2
    assert "commit_batching" in capsys.readouterr().out


def test_unknown_scenario_is_an_argument_error(capsys):
    with pytest.raises(SystemExit):
        profile_cli.main(["no_such_scenario"])
    assert "unknown scenario" in capsys.readouterr().err


def test_every_scenario_entry_is_callable():
    for name, run in profile_cli.SCENARIOS.items():
        assert callable(run), name
