"""Unit tests for the coherence plane's server-side soft state.

The :class:`WriteHotDetector` (windowed write-rate EWMA with a
hysteresis mode flip) and the :class:`LesseeRegistry` (TTL-bounded
lessee table), including the export/install merge semantics the
reshard handover relies on: fresher-sample-wins for the detector,
latest-expiry-wins for the registry.
"""

import pytest

from repro.naming.coherence import (
    PULL_MODE,
    PUSH_MODE,
    LesseeRegistry,
    WriteHotDetector,
    group_of,
)


class Clock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


def test_group_name_is_per_owner():
    assert group_of("a1") == "coh:a1"
    assert group_of("a1") != group_of("a2")


# -- WriteHotDetector --------------------------------------------------------


def make_detector(clock, **kwargs):
    kwargs.setdefault("hot_rate", 1.0)
    kwargs.setdefault("window", 10.0)
    return WriteHotDetector(clock, **kwargs)


@pytest.mark.parametrize("bad", [
    {"hot_rate": 0.0},
    {"hot_rate": -1.0},
    {"window": 0.0},
    {"smoothing": 0.0},
    {"smoothing": 1.5},
    {"cool_fraction": 0.0},
    {"cool_fraction": 1.0},
])
def test_detector_rejects_degenerate_parameters(bad):
    kwargs = {"hot_rate": 1.0, "window": 10.0,
              "smoothing": 0.3, "cool_fraction": 0.5}
    kwargs.update(bad)
    with pytest.raises(ValueError):
        WriteHotDetector(Clock(), **kwargs)


def test_single_write_seeds_cold():
    clock = Clock()
    detector = make_detector(clock)
    detector.record_write("u")
    # Seeded at one write per window: a lone write can never flip a
    # sane threshold.
    assert detector.effective_rate("u") == pytest.approx(0.1)
    assert detector.mode_of("u") == PULL_MODE


def test_unknown_uid_reads_as_silent():
    detector = make_detector(Clock())
    assert detector.effective_rate("never-seen") == 0.0
    assert detector.mode_of("never-seen") == PULL_MODE


def test_rapid_writes_flip_to_push():
    clock = Clock()
    detector = make_detector(clock)
    for _ in range(5):
        detector.record_write("u")
        clock.now += 0.2  # five writes per second >> hot_rate of one
    assert detector.effective_rate("u") > detector.hot_rate
    assert detector.mode_of("u") == PUSH_MODE


def test_slow_writes_never_flip():
    clock = Clock()
    detector = make_detector(clock)
    for _ in range(30):
        detector.record_write("u")
        clock.now += 2.0  # half the hot rate, forever
    assert detector.mode_of("u") == PULL_MODE


def test_same_instant_burst_is_capped_not_infinite():
    clock = Clock()
    detector = make_detector(clock)
    detector.record_write("u")
    detector.record_write("u")  # zero interarrival gap
    rate = detector.effective_rate("u")
    assert rate == pytest.approx(0.3 * (1.0 / 0.3) + 0.7 * 0.1)
    assert detector.mode_of("u") == PUSH_MODE


def test_hysteresis_holds_push_until_the_cool_threshold():
    clock = Clock()
    detector = make_detector(clock)
    detector.record_write("u")
    clock.now = 0.2
    detector.record_write("u")  # ewma ~1.57, above hot_rate
    assert detector.mode_of("u") == PUSH_MODE
    # Idle decay: still above cool_fraction * hot_rate at t=8...
    clock.now = 8.0
    assert 0.5 < detector.effective_rate("u") < 1.0
    assert detector.mode_of("u") == PUSH_MODE  # hysteresis holds
    # ...and below it at t=12, where the entry finally cools to pull.
    clock.now = 12.0
    assert detector.effective_rate("u") < 0.5
    assert detector.mode_of("u") == PULL_MODE
    assert detector.mode_of("u") == PULL_MODE  # and stays there


def test_forget_and_reset_drop_all_trace():
    clock = Clock()
    detector = make_detector(clock)
    for uid in ("a", "b"):
        detector.record_write(uid)
        clock.now += 0.1
        detector.record_write(uid)
    assert detector.mode_of("a") == PUSH_MODE
    detector.forget("a")
    assert detector.effective_rate("a") == 0.0
    assert detector.mode_of("a") == PULL_MODE
    detector.reset()
    assert detector.effective_rate("b") == 0.0


def test_export_names_only_observed_uids():
    detector = make_detector(Clock())
    detector.record_write("seen")
    payload = detector.export_state(["seen", "never"])
    assert set(payload) == {"seen"}
    rate, last, pushed = payload["seen"]
    assert rate == pytest.approx(0.1) and last == 0.0 and not pushed


def test_install_adopts_fresher_samples_and_keeps_newer_ones():
    clock = Clock()
    hot = make_detector(clock)
    cold = make_detector(clock)
    cold.record_write("u")  # one cold sample at t=0
    clock.now = 0.2
    hot.record_write("u")
    clock.now = 0.4
    hot.record_write("u")  # hot sample at t=0.4
    assert hot.mode_of("u") == PUSH_MODE

    stale = cold.export_state(["u"])
    fresh = hot.export_state(["u"])
    # Fresher sample wins: the cold side adopts the handover...
    cold.install_state(fresh)
    assert cold.effective_rate("u") == hot.effective_rate("u")
    assert cold.mode_of("u") == PUSH_MODE
    # ...and the hot side refuses the stale one.
    hot.install_state(stale)
    assert hot.mode_of("u") == PUSH_MODE
    assert hot.effective_rate("u") == cold.effective_rate("u")


def test_install_can_demote_a_pushed_entry():
    clock = Clock()
    a = make_detector(clock)
    b = make_detector(clock)
    a.record_write("u")
    clock.now = 0.1
    a.record_write("u")
    assert a.mode_of("u") == PUSH_MODE
    clock.now = 0.2
    b.record_write("u")  # fresher, but cold (seed sample)
    a.install_state(b.export_state(["u"]))
    assert a.mode_of("u") == PULL_MODE


# -- LesseeRegistry ----------------------------------------------------------


def test_registry_rejects_degenerate_ttl():
    with pytest.raises(ValueError):
        LesseeRegistry(Clock(), ttl=0.0)


def test_register_and_enumerate_sorted():
    registry = LesseeRegistry(Clock(), ttl=5.0)
    registry.register("u", "c2")
    registry.register("u", "c1")
    assert registry.lessees("u") == ["c1", "c2"]
    assert registry.all_clients() == {"c1", "c2"}
    assert len(registry) == 1


def test_registrations_age_out_at_the_ttl():
    clock = Clock()
    registry = LesseeRegistry(clock, ttl=5.0)
    registry.register("u", "c1")
    clock.now = 4.9
    assert registry.lessees("u") == ["c1"]
    clock.now = 5.0  # expiry is exclusive: expired exactly at now
    assert registry.lessees("u") == []
    assert registry.all_clients() == set()
    assert len(registry) == 0


def test_reregistration_extends_the_expiry():
    clock = Clock()
    registry = LesseeRegistry(clock, ttl=5.0)
    registry.register("u", "c1")
    clock.now = 3.0
    registry.register("u", "c1")  # renewed: expires at 8, not 5
    clock.now = 6.0
    assert registry.lessees("u") == ["c1"]


def test_unregister_is_immediate_and_drops_empty_uids():
    registry = LesseeRegistry(Clock(), ttl=5.0)
    registry.register("u", "c1")
    registry.unregister("u", "c1")
    assert registry.lessees("u") == []
    assert len(registry) == 0
    registry.unregister("u", "c1")  # idempotent
    registry.unregister("other", "c1")


def test_forget_and_clear():
    registry = LesseeRegistry(Clock(), ttl=5.0)
    registry.register("a", "c1")
    registry.register("b", "c2")
    registry.forget("a")
    assert registry.lessees("a") == []
    assert registry.lessees("b") == ["c2"]
    registry.clear()
    assert len(registry) == 0


def test_export_covers_only_live_named_registrations():
    clock = Clock()
    registry = LesseeRegistry(clock, ttl=5.0)
    registry.register("moved", "c1")
    registry.register("stays", "c2")
    clock.now = 1.0
    registry.register("moved", "c3")
    payload = registry.export_state(["moved", "never"])
    assert set(payload) == {"moved"}
    assert payload["moved"] == {"c1": 5.0, "c3": 6.0}


def test_install_merges_latest_expiry_wins():
    clock = Clock()
    old_owner = LesseeRegistry(clock, ttl=5.0)
    new_owner = LesseeRegistry(clock, ttl=5.0)
    old_owner.register("u", "c1")      # expires at 5
    clock.now = 2.0
    new_owner.register("u", "c1")      # expires at 7: newer, must win
    new_owner.register("u", "c2")
    new_owner.install_state(old_owner.export_state(["u"]))
    clock.now = 6.0
    # c1's handed-over (older) expiry did not clobber the newer one.
    assert new_owner.lessees("u") == ["c1", "c2"]
    # And the reverse direction adopts the newer expiry wholesale.
    clock.now = 2.0
    old_owner.install_state({"u": {"c1": 7.0, "c2": 7.0}})
    clock.now = 6.0
    assert old_owner.lessees("u") == ["c1", "c2"]
