"""Tests for per-entry vector clocks and divergence repair.

Scalar (sv, st) write versions bump identically on every replica of a
committed action, so two replicas that each committed a *different*
write under a partial partition end up at the same scalar versions with
different content -- invisible to every scalar probe.  The per-writer
vector clocks exist to make exactly that state detectable, and the
ReplicaIO clock phase to make it repairable.
"""

from repro.actions import AtomicAction
from repro.naming import GroupViewDatabase, ReplicaIO, ShardRouter
from repro.naming.group_view_db import SYNC_SERVICE_NAME
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)
NODES = ("shard-a", "shard-b", "shard-c")


def make_db(caller=""):
    db = GroupViewDatabase()
    db.rpc_caller = caller
    boot = AtomicAction()
    db.define_object(boot.id.path, str(UID), ["h1"], ["t1"])
    db.commit(boot.id.path)
    return db


def commit_increment(db, caller):
    db.rpc_caller = caller
    action = AtomicAction()
    db.increment(action.id.path, "binder", str(UID), ["h1"])
    db.commit(action.id.path)


def commit_insert(db, caller, host):
    """One committed Sv insert by ``caller`` -- divergent content."""
    db.rpc_caller = caller
    action = AtomicAction()
    db.insert(action.id.path, str(UID), host)
    db.commit(action.id.path)


# -- the database half ------------------------------------------------------


def test_commit_bumps_the_callers_clock_component():
    db = make_db(caller="boot")
    assert db.entry_clock(str(UID)) == {"boot": 1}
    commit_increment(db, "cA")
    commit_increment(db, "cA")
    commit_increment(db, "cB")
    assert db.entry_clock(str(UID)) == {"boot": 1, "cA": 2, "cB": 1}


def test_abort_does_not_bump_the_clock():
    db = make_db(caller="boot")
    db.rpc_caller = "cA"
    action = AtomicAction()
    db.increment(action.id.path, "binder", str(UID), ["h1"])
    db.abort(action.id.path)
    assert db.entry_clock(str(UID)) == {"boot": 1}


def test_clocks_are_volatile_and_forgettable():
    db = make_db(caller="boot")
    commit_increment(db, "cA")
    db.reset_volatile()
    assert db.entry_clock(str(UID)) == {}  # lost with the crash
    commit_increment(db, "cA")
    assert db.forget_entry(str(UID)) is True
    assert db.entry_clock(str(UID)) == {}


def test_install_merges_clocks_pointwise_max():
    db = make_db(caller="boot")
    sv, st = db.entry_versions(str(UID))
    installed = db.guarded_install_entry(
        str(UID), ["h1", "h2"], {"h1": {}, "h2": {}}, ["t1"],
        (sv + 1, st), vclock={"boot": 1, "peer": 3})
    assert installed is True
    assert db.entry_clock(str(UID)) == {"boot": 1, "peer": 3}


def test_force_install_overwrites_equal_version_content():
    db = make_db(caller="boot")
    versions = db.entry_versions(str(UID))
    # Version-gated: an equal-version install is a no-op...
    assert db.guarded_install_entry(
        str(UID), ["h9"], {"h9": {}}, ["t1"], versions) is False
    # ...unless forced (divergence repair installing the clock winner).
    assert db.guarded_install_entry(
        str(UID), ["h9"], {"h9": {}}, ["t1"], versions,
        vclock={"boot": 1, "cB": 1}, force=True) is True
    snapshot = db.get_server_with_uses((0,), str(UID))
    from repro.actions.action import ActionId
    db.server_db.locks.release_all(ActionId((0,)))
    assert list(snapshot.hosts) == ["h9"]
    # Forced installs never move the scalar versions backwards.
    assert db.entry_versions(str(UID)) == versions
    assert db.entry_clock(str(UID)) == {"boot": 1, "cB": 1}


# -- the repair half --------------------------------------------------------


def make_world():
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    dbs, agents = {}, {}
    for name in NODES:
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
        db = make_db(caller="boot")
        agents[name].register(SYNC_SERVICE_NAME, db)
        dbs[name] = db
    nic_c = net.attach("client")
    agent = RpcAgent(s, nic_c, default_timeout=0.5,
                     demux=MessageDemux(nic_c))
    router = ShardRouter(list(NODES), replicas=8)
    io = ReplicaIO(agent, router, replication=3)
    return s, net, dbs, router, io


def run(s, gen):
    return s.run_until_settled(s.spawn(gen), until=100.0)


def probe_all(s, io):
    probes, dark = run(s, io.probe_versions(str(UID), NODES))
    assert not dark
    return probes


def hosts_at(db):
    from repro.actions.action import ActionId
    snapshot = db.get_server_with_uses((0,), str(UID))
    db.server_db.locks.release_all(ActionId((0,)))
    return list(snapshot.hosts)


def test_identical_histories_need_no_repair():
    s, net, dbs, router, io = make_world()
    for db in dbs.values():
        commit_increment(db, "cA")  # same writer, same history everywhere
    probes = probe_all(s, io)
    outcome, copied = run(s, io.converge_entry(str(UID), probes, probes))
    assert (outcome, copied) == ("clean", 0)
    assert io.metrics.counter_value("replica_io.divergence_repairs") == 0


def test_partial_partition_divergence_is_detected_and_repaired():
    """Equal scalars, different commit histories: the scalar probe says
    convergent, the clock phase says diverged -- and repairs it."""
    s, net, dbs, router, io = make_world()
    # Each side of the partition commits a different client's write:
    # every replica sits at the same (sv, st) with different content.
    commit_insert(dbs["shard-a"], "cA", "hA")
    commit_insert(dbs["shard-b"], "cB", "hB")
    commit_insert(dbs["shard-c"], "cC", "hC")
    probes = probe_all(s, io)
    assert len(set(probes.values())) == 1, "scalars must tie"

    outcome, copied = run(s, io.converge_entry(str(UID), probes, probes))
    assert outcome == "copied"
    assert io.metrics.counter_value("replica_io.divergence_repairs") == 2
    # Concurrent clocks: the deterministic owner-order winner's content
    # lands everywhere, with the pointwise-max merged clock.
    winner = router.view().write_set(str(UID), 3)[0]
    expected = hosts_at(dbs[winner])
    merged = {"boot": 1, "cA": 1, "cB": 1, "cC": 1}
    for name, db in dbs.items():
        assert hosts_at(db) == expected, name
        assert db.entry_clock(str(UID)) == merged, name


def test_dominant_clock_wins_over_owner_order():
    s, net, dbs, router, io = make_world()
    order = router.view().write_set(str(UID), 3)
    follower = order[0]          # first in owner order, but dominated
    leader = order[1]            # saw a superset of commit history
    commit_insert(dbs[leader], "cA", "hLeader")
    # The follower holds the same scalar versions but a *subset* clock
    # (it missed cA's commit; state installed, clock left behind --
    # the post-restore shape after a scalar-only catch-up).
    versions = dbs[leader].entry_versions(str(UID))
    assert dbs[follower].guarded_install_entry(
        str(UID), ["hStale"], {"hStale": {}}, ["t1"], versions,
        force=True) is True
    bystander = order[2]
    assert dbs[bystander].guarded_install_entry(
        str(UID), ["hStale"], {"hStale": {}}, ["t1"], versions,
        force=True) is True

    probes = probe_all(s, io)
    outcome, _ = run(s, io.converge_entry(str(UID), probes, probes))
    assert outcome == "copied"
    for name, db in dbs.items():
        assert hosts_at(db) == ["h1", "hLeader"], name
        assert db.entry_clock(str(UID)) == {"boot": 1, "cA": 1}, name


def test_repair_defers_on_a_dark_replica():
    s, net, dbs, router, io = make_world()
    commit_insert(dbs["shard-a"], "cA", "hA")
    commit_insert(dbs["shard-b"], "cB", "hB")
    commit_insert(dbs["shard-c"], "cC", "hC")
    probes = probe_all(s, io)
    # One level replica goes dark between the scalar probe and the
    # clock probe: the pass must defer, not repair a partial group.
    net.block("client", "shard-c")
    outcome, _ = run(s, io.converge_entry(str(UID), probes, probes))
    assert outcome == "deferred"
    assert io.metrics.counter_value("replica_io.divergence_repairs") == 0
    net.unblock("client", "shard-c")
    outcome, _ = run(s, io.converge_entry(str(UID), probes, probes))
    assert outcome == "copied"
