"""Tests for the combined group-view database."""

import pytest

from repro.actions import AtomicAction
from repro.naming import GroupViewDatabase
from repro.storage import Uid


def make_db():
    db = GroupViewDatabase()
    boot = AtomicAction()
    db.define_object(boot.id.path, "sys:1", ["alpha", "beta"], ["beta", "gamma"])
    db.commit(boot.id.path)
    return db


def test_define_object_populates_both_halves():
    db = make_db()
    action = AtomicAction()
    assert db.get_server(action.id.path, "sys:1") == ["alpha", "beta"]
    assert db.get_view(action.id.path, "sys:1") == ["beta", "gamma"]
    assert db.knows("sys:1")
    assert not db.knows("sys:9")


def test_sv_and_st_entries_independently_locked():
    db = make_db()
    a, b = AtomicAction(), AtomicAction()
    db.insert(a.id.path, "sys:1", "delta")      # write lock on ("sv", uid)
    db.include(b.id.path, "sys:1", "delta")     # write lock on ("st", uid): ok


def test_single_commit_spans_both_halves():
    db = make_db()
    action = AtomicAction()
    db.insert(action.id.path, "sys:1", "delta")
    db.exclude(action.id.path, [("sys:1", ["gamma"])])
    assert db.prepare(action.id.path) == "ok"
    db.commit(action.id.path)
    check = AtomicAction()
    assert db.get_server(check.id.path, "sys:1") == ["alpha", "beta", "delta"]
    assert db.get_view(check.id.path, "sys:1") == ["beta"]


def test_single_abort_spans_both_halves():
    db = make_db()
    action = AtomicAction()
    db.insert(action.id.path, "sys:1", "delta")
    db.exclude(action.id.path, [("sys:1", ["gamma"])])
    db.abort(action.id.path)
    check = AtomicAction()
    assert db.get_server(check.id.path, "sys:1") == ["alpha", "beta"]
    assert db.get_view(check.id.path, "sys:1") == ["beta", "gamma"]


def test_prepare_readonly_when_nothing_written():
    db = make_db()
    action = AtomicAction()
    db.get_server(action.id.path, "sys:1")
    assert db.prepare(action.id.path) == "readonly"


def test_ping():
    assert make_db().ping() == "pong"


def test_persistence_roundtrip():
    db = make_db()
    user = AtomicAction()
    db.increment(user.id.path, "cn", "sys:1", ["alpha"])
    db.commit(user.id.path)
    buffer = db.save_state()
    restored = GroupViewDatabase.restore_state(buffer)
    check = AtomicAction()
    assert restored.get_server(check.id.path, "sys:1") == ["alpha", "beta"]
    assert restored.get_view(check.id.path, "sys:1") == ["beta", "gamma"]
    snapshot = restored.get_server_with_uses(check.id.path, "sys:1")
    assert snapshot.uses["alpha"] == {"cn": 1}


def test_quiescence_via_combined_interface():
    db = make_db()
    assert db.is_quiescent("sys:1")
    user = AtomicAction()
    db.increment(user.id.path, "cn", "sys:1", ["alpha"])
    db.commit(user.id.path)
    assert not db.is_quiescent("sys:1")
