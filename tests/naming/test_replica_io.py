"""Unit tests for the ReplicaIO engine's sync plane.

The client plane (fenced fan-out writes, failover reads) is exercised
end-to-end by ``test_replicated_client.py``, ``test_read_repair.py``
and ``test_fencing.py``; these tests pin the sync-plane contract every
maintenance daemon (resync, migration, repair) now shares:
``converge_entry``'s outcomes, its multi-source version-half merging,
and the local-install hook a resync uses for its own database.
"""

from repro.actions import AtomicAction
from repro.naming import GroupViewDatabase, ReplicaIO, ShardRouter
from repro.naming.group_view_db import SYNC_SERVICE_NAME
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)
NODES = ("shard-a", "shard-b", "shard-c")


def make_world():
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    dbs, agents = {}, {}
    for name in NODES:
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
        db = GroupViewDatabase()
        boot = AtomicAction()
        db.define_object(boot.id.path, str(UID), ["h1"], ["t1"])
        db.commit(boot.id.path)
        agents[name].register(SYNC_SERVICE_NAME, db)
        dbs[name] = db
    nic_c = net.attach("client")
    agent = RpcAgent(s, nic_c, default_timeout=0.5,
                     demux=MessageDemux(nic_c))
    router = ShardRouter(list(NODES), replicas=8)
    io = ReplicaIO(agent, router, replication=3)
    return s, dbs, agents, router, io


def run(s, gen):
    return s.run_until_settled(s.spawn(gen), until=100.0)


def bump_sv(db, times=1):
    """Commit ``times`` server-half mutations (version +1 each)."""
    for _ in range(times):
        action = AtomicAction()
        db.increment(action.id.path, "binder", str(UID), ["h1"])
        db.commit(action.id.path)


def bump_st(db, times=1, start=2):
    """Commit ``times`` state-half mutations (version +1 each)."""
    for i in range(times):
        action = AtomicAction()
        db.include(action.id.path, str(UID), f"t{start + i}")
        db.commit(action.id.path)


def probe_all(s, io):
    probes, dark = run(s, io.probe_versions(str(UID), NODES))
    assert not dark
    return probes


def test_converge_is_probe_only_when_nothing_lags():
    s, dbs, agents, router, io = make_world()
    probes = probe_all(s, io)
    outcome, copied = run(s, io.converge_entry(str(UID), probes, probes))
    assert (outcome, copied) == ("clean", 0)


def test_converge_merges_halves_from_different_sources():
    """The two version halves' maxima can live on different replicas;
    one converge pass must pull both into every laggard."""
    s, dbs, agents, router, io = make_world()
    bump_sv(dbs["shard-a"])        # a: (2, 1)
    bump_st(dbs["shard-b"])        # b: (1, 2)
    probes = probe_all(s, io)
    assert probes["shard-a"] == (2, 1)
    assert probes["shard-b"] == (1, 2)
    assert probes["shard-c"] == (1, 1)

    outcome, copied = run(s, io.converge_entry(str(UID), probes, probes))
    assert outcome == "copied"
    assert copied >= 2  # c took both halves; a and b took each other's
    for db in dbs.values():
        assert db.entry_versions(str(UID)) == (2, 2)
    # Content followed the versions: everyone has a's use count and b's
    # grown view.
    for db in dbs.values():
        snapshot = db.get_server_with_uses((0,), str(UID))
        view = db.get_view((0,), str(UID))
        db.server_db.locks.release_all(_probe_id())
        db.state_db.locks.release_all(_probe_id())
        assert dict(snapshot.uses["h1"]) == {"binder": 1}
        assert "t2" in view


def _probe_id():
    from repro.actions.action import ActionId
    return ActionId((0,))


def test_converge_defers_on_a_locked_target():
    s, dbs, agents, router, io = make_world()
    bump_sv(dbs["shard-a"])
    holder = AtomicAction()
    dbs["shard-c"].get_server(holder.id.path, str(UID))  # live local action
    probes = probe_all(s, io)
    outcome, copied = run(s, io.converge_entry(str(UID), probes, probes))
    assert outcome == "deferred"
    dbs["shard-c"].abort(holder.id.path)
    probes = probe_all(s, io)
    outcome, _ = run(s, io.converge_entry(str(UID), probes, probes))
    assert outcome == "copied"


def test_converge_settles_when_the_probe_was_stale():
    """A target that caught up between probe and install is a no-op
    (version-gated), not a copy -- the caller's confirmation pass
    logic depends on the distinction."""
    s, dbs, agents, router, io = make_world()
    bump_sv(dbs["shard-a"])
    stale_probe = {"shard-b": (1, 1)}  # but b catches up before the push
    bump_sv(dbs["shard-b"])
    outcome, copied = run(s, io.converge_entry(
        str(UID), {"shard-a": (2, 1)}, stale_probe))
    assert (outcome, copied) == ("settled", 0)


def test_converge_reports_unknown_when_every_source_disclaims():
    s, dbs, agents, router, io = make_world()
    dbs["shard-a"].forget_entry(str(UID))
    outcome, copied = run(s, io.converge_entry(
        str(UID), {"shard-a": (5, 5)}, {"shard-c": (1, 1)}))
    assert (outcome, copied) == ("unknown", 0)


def test_converge_defers_when_a_source_goes_dark_mid_pass():
    s, dbs, agents, router, io = make_world()
    bump_sv(dbs["shard-a"])
    probes = probe_all(s, io)
    agents["shard-a"]._nic.up = False  # dark between probe and fetch
    outcome, copied = run(s, io.converge_entry(str(UID), probes, probes))
    assert (outcome, copied) == ("deferred", 0)


def test_converge_with_a_local_install_hook():
    """A resync passes a plain callable installing into its own
    database; the engine must take both plain and generator hooks."""
    s, dbs, agents, router, io = make_world()
    bump_sv(dbs["shard-a"], times=2)
    local = GroupViewDatabase()
    installs = []

    def install(target, uid_text, copy):
        installs.append(target)
        local.define_object((0,), uid_text, copy.hosts, copy.view)
        local.commit((0,))
        return True

    outcome, copied = run(s, io.converge_entry(
        str(UID), {"shard-a": (3, 1)}, {"me": (0, 0)}, install=install))
    assert (outcome, copied) == ("copied", 1)
    assert installs == ["me"]
    assert local.knows(str(UID))


def test_collect_uids_unions_reachable_peers():
    s, dbs, agents, router, io = make_world()
    boot = AtomicAction()
    dbs["shard-b"].define_object(boot.id.path, "sys:9", ["h9"], ["t9"])
    dbs["shard-b"].commit(boot.id.path)
    agents["shard-c"]._nic.up = False
    universe, answered = run(s, io.collect_uids(NODES))
    assert answered == 2
    assert universe == {str(UID), "sys:9"}
