"""End-to-end epoch fencing through the sharded client.

The satellite contract: a client holding a pre-flip
:class:`~repro.naming.shard_router.RingView` must get
:class:`~repro.net.errors.StaleRingEpoch` from the fenced shard
services, refresh its view, and commit on the *new* owners -- never
silently write to the wrong ones.  These tests drive the flip at
deterministic simulation instants (between a request's send and its
dispatch) to pin the exact window the old settle interval used to
paper over.
"""

import pytest

from repro.actions import ActionStatus, AtomicAction
from repro.actions.action import ActionId
from repro.naming import GroupViewDatabase, ShardRouter
from repro.naming.group_view_db import SERVICE_NAME
from repro.naming.sharded_client import ShardedGroupViewDbClient
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.net.errors import StaleRingEpoch
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)
NODES = ("shard-a", "shard-b", "shard-c")


def make_fenced_world(ring=("shard-a", "shard-b"), replication=2):
    """Three booted shard hosts, ``ring`` of them on the router, every
    client-facing service fenced against the shared router.  The entry
    is pre-seeded on *every* host so any post-flip owner can serve it.
    """
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    router = ShardRouter(list(ring), replicas=8)
    dbs, agents = {}, {}
    for name in NODES:
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
        db = GroupViewDatabase()
        boot = AtomicAction()
        db.define_object(boot.id.path, str(UID), ["h1", "h2"], ["t1"])
        db.commit(boot.id.path)
        agents[name].register(SERVICE_NAME, db,
                              fence=lambda: router.fence_epoch)
        dbs[name] = db
    nic_c = net.attach("client")
    client_agent = RpcAgent(s, nic_c, default_timeout=0.5,
                            demux=MessageDemux(nic_c))
    client = ShardedGroupViewDbClient(client_agent, router,
                                      replication=replication)
    return s, dbs, agents, router, client


def run(s, gen):
    return s.run_until_settled(s.spawn(gen), until=100.0)


def uses_at(db):
    snapshot = db.server_db.get_server_with_uses((0,), UID)
    db.server_db.locks.release_all(ActionId((0,)))
    return {h: dict(c) for h, c in snapshot.uses.items()}


def test_a_raw_stale_tag_is_rejected_with_the_server_epoch():
    s, dbs, agents, router, client = make_fenced_world()
    view = router.view()
    router.add_node("shard-c")  # the flip: fence advances
    target = router.nodes[0]
    call = client.io.rpc.call(target, SERVICE_NAME, "ping",
                              ring_epoch=view.epoch)
    with pytest.raises(StaleRingEpoch) as info:
        s.run_until_settled(call)
    assert info.value.server_epoch == router.fence_epoch


def test_write_fenced_mid_flight_refreshes_and_commits_on_new_owners():
    """The settle-window killer: the membership flips after the write
    was sent but before it dispatches.  The fence rejects it, the
    engine refreshes its view, and the commit lands on the *current*
    owners -- no lost write, no write accepted by a non-owner."""
    s, dbs, agents, router, client = make_fenced_world()
    action = AtomicAction(node="client")

    def body():
        yield from client.increment(action, "client", UID, ["h1"])
        return (yield from action.commit())

    # FixedLatency(0.01): the first replica RPC sent at t=0 dispatches
    # at t=0.01.  Flip the ring at t=0.005 -- squarely in flight.
    s.schedule(0.005, lambda: router.add_node("shard-c"))
    status = run(s, body())
    assert status is ActionStatus.COMMITTED
    assert client.io.stale_retries >= 1, \
        "the in-flight write must have been fenced and re-routed"
    owners = router.preference_list(UID, 2)
    for owner in owners:
        assert uses_at(dbs[owner])["h1"] == {"client": 1}, \
            f"post-flip owner {owner} must hold the committed write"
    # No non-owner applied it (nothing slipped through the old view).
    for name, db in dbs.items():
        if name not in owners:
            assert uses_at(db)["h1"] == {}, \
                f"non-owner {name} must not have accepted the fenced write"


def test_read_fenced_mid_flight_refreshes_and_serves():
    s, dbs, agents, router, client = make_fenced_world()
    action = AtomicAction(node="client")

    def body():
        hosts = yield from client.get_server(action, UID)
        yield from action.commit()
        return hosts

    s.schedule(0.005, lambda: router.add_node("shard-c"))
    assert run(s, body()) == ["h1", "h2"]
    assert client.io.stale_retries >= 1


def test_single_home_write_is_fenced_too():
    """Even replication=1 (eager enlistment, no fan-out) carries the
    tag: a flip mid-flight must not let the old single home execute a
    write it no longer owns."""
    s, dbs, agents, router, client = make_fenced_world(
        ring=("shard-a",), replication=1)
    action = AtomicAction(node="client")

    def body():
        yield from client.increment(action, "client", UID, ["h1"])
        return (yield from action.commit())

    s.schedule(0.005, lambda: router.add_node("shard-b"))
    status = run(s, body())
    assert status is ActionStatus.COMMITTED
    assert client.io.stale_retries >= 1
    owner = router.shard_for(UID)
    assert uses_at(dbs[owner])["h1"] == {"client": 1}
    for name, db in dbs.items():
        if name != owner:
            assert uses_at(db)["h1"] == {}


def test_an_operation_cannot_outrun_a_flapping_ring():
    """Retries are bounded: a fence that never matches (a pathological
    routing storm) surfaces as the typed error, not an infinite loop."""
    s, dbs, agents, router, client = make_fenced_world()
    for agent in agents.values():
        agent.unregister(SERVICE_NAME)
    for name, agent in agents.items():
        # A server perpetually one epoch ahead of any client view.
        agent.register(SERVICE_NAME, dbs[name],
                       fence=lambda: router.fence_epoch + 1)
    action = AtomicAction(node="client")

    def body():
        yield from client.increment(action, "client", UID, ["h1"])

    with pytest.raises(StaleRingEpoch):
        run(s, body())
    retries = client.io.max_stale_retries
    assert client.io.stale_retries == retries + 1
    run(s, action.abort())


def test_fence_survives_shard_recovery():
    """A crashed host must re-arm the fence when it re-registers --
    recovering at "epoch 0" and serving fenced traffic unchecked is
    the failure the audit in the issue is about.  (The system harness
    re-registers through NameShardHost's boot hook; here we model the
    same re-registration.)"""
    s, dbs, agents, router, client = make_fenced_world()
    victim = router.nodes[0]
    agents[victim].reset()  # crash: services and fences die
    agents[victim].register(SERVICE_NAME, dbs[victim],
                            fence=lambda: router.fence_epoch)  # boot hook
    view = router.view()
    router.add_node("shard-c")
    call = client.io.rpc.call(victim, SERVICE_NAME, "ping",
                              ring_epoch=view.epoch)
    with pytest.raises(StaleRingEpoch):
        s.run_until_settled(call)


def test_recovered_shard_host_re_arms_the_fence():
    """Crash/recovery runs NameShardHost's hook, then the resync gate
    pulls the service and re-registers it after convergence -- and that
    re-registration must re-arm the fence, or a recovered host would
    serve stale-ring traffic unchecked."""
    from repro import DistributedSystem, SystemConfig

    system = DistributedSystem(SystemConfig(
        seed=7, nameserver_shards=3, nameserver_replication=2))
    client_node = system.add_node("observer")
    victim = system.shard_hosts[0]

    stale_view = system.shard_router.view()
    system.nodes[victim].crash()
    system.run(until=system.scheduler.now + 1.0)
    system.nodes[victim].recover()
    system.run(until=system.scheduler.now + 30.0)  # resync re-registers
    assert system.shard_resyncers[victim].serving

    system.shard_router.add_node("late-host")  # advance the fence
    call = client_node.rpc.call(victim, SERVICE_NAME, "ping",
                                ring_epoch=stale_view.epoch)
    with pytest.raises(StaleRingEpoch) as info:
        system.scheduler.run_until_settled(call)
    assert info.value.server_epoch == system.shard_router.fence_epoch
