"""Unit tests for the online-resharding building blocks.

The ReshardManager's end-to-end behaviour lives in
``tests/integration/test_online_reshard.py``; these tests pin the
pieces it is built from: ring cloning and staged transitions, the
dual-ownership union routing, the lock-guarded install/forget surface
on the database, and the autoscaler's triggering rules.
"""

import pytest

from repro.actions import AtomicAction
from repro.naming import GroupViewDatabase, ShardAutoscaler, ShardRouter
from repro.naming.shard_router import RingTransition
from repro.sim import Scheduler
from repro.sim.process import Timeout


def test_clone_is_independent_and_routes_identically():
    ring = ShardRouter(["a", "b", "c"], replicas=16)
    dup = ring.clone()
    for key in range(50):
        assert ring.shard_for(key) == dup.shard_for(key)
        assert ring.preference_list(key, 2) == dup.preference_list(key, 2)
    dup.add_node("d")
    assert ring.nodes == ["a", "b", "c"]
    assert dup.nodes == ["a", "b", "c", "d"]
    assert dup.epoch == ring.epoch + 1
    assert dup.transition is None


def test_epoch_counts_membership_changes():
    ring = ShardRouter(["a", "b"], replicas=8)
    assert ring.epoch == 0  # boot membership is epoch 0
    ring.add_node("c")
    ring.remove_node("a")
    assert ring.epoch == 2


def test_membership_change_moves_only_the_affected_arcs():
    """The consistent-hash stability property the migration relies on:
    growing the ring moves keys *onto* the new host only -- no key
    moves between two old hosts."""
    ring = ShardRouter(["a", "b", "c"], replicas=32)
    grown = ring.clone()
    grown.add_node("d")
    moved = unmoved = 0
    for key in range(200):
        old = ring.preference_list(key, 2)
        new = grown.preference_list(key, 2)
        movers = [h for h in new if h not in old]
        if movers:
            moved += 1
            assert movers == ["d"], (key, old, new)
        else:
            assert old == new, (key, old, new)
            unmoved += 1
    assert moved > 0 and unmoved > 0


def test_union_preference_list_without_transition_is_plain():
    ring = ShardRouter(["a", "b", "c"], replicas=16)
    for key in range(20):
        assert ring.union_preference_list(key, 2) == \
            ring.preference_list(key, 2)


def test_union_preference_list_is_old_first_plus_new_extras():
    ring = ShardRouter(["a", "b", "c"], replicas=16)
    target = ring.clone()
    target.add_node("d")
    ring.transition = RingTransition(target, epoch=target.epoch)
    for key in range(100):
        old = ring.preference_list(key, 2)
        new = target.preference_list(key, 2)
        union = ring.union_preference_list(key, 2)
        assert union[:len(old)] == old, "old epoch owners must come first"
        assert set(union) == set(old) | set(new)
        assert len(union) == len(set(union))


def _committed_entry(db, uid_text="sys:1", host="h1"):
    boot = AtomicAction()
    db.define_object(boot.id.path, uid_text, [host], [host])
    db.commit(boot.id.path)
    return uid_text


def test_guarded_install_entry_respects_local_locks():
    db = GroupViewDatabase()
    uid_text = _committed_entry(db)
    holder = AtomicAction()
    db.get_server(holder.id.path, uid_text)  # read lock held by a live action
    assert db.guarded_install_entry(uid_text, ["h2"], {"h2": {}}, ["h2"],
                                    (9, 9)) is None
    db.abort(holder.id.path)
    assert db.guarded_install_entry(uid_text, ["h2"], {"h2": {}}, ["h2"],
                                    (9, 9)) is True
    assert db.get_server((0,), uid_text) == ["h2"]


def test_guarded_install_entry_is_version_gated():
    db = GroupViewDatabase()
    uid_text = _committed_entry(db)
    # Same-or-older versions must not land (fresh-over-stale only).
    assert db.guarded_install_entry(uid_text, ["h9"], {"h9": {}}, ["h9"],
                                    (1, 1)) is False
    assert db.get_server((0,), uid_text) == ["h1"]


def test_forget_entry_removes_both_halves():
    db = GroupViewDatabase()
    uid_text = _committed_entry(db)
    assert db.forget_entry(uid_text) is True
    assert not db.knows(uid_text)
    assert db.entry_versions(uid_text) == (0, 0)
    assert db.forget_entry(uid_text) is False  # idempotent


def test_forget_entry_defers_to_live_actions():
    db = GroupViewDatabase()
    uid_text = _committed_entry(db)
    holder = AtomicAction()
    db.get_view(holder.id.path, uid_text)
    assert db.forget_entry(uid_text) is None
    assert db.knows(uid_text)
    db.abort(holder.id.path)
    assert db.forget_entry(uid_text) is True


class _FakeLoad:
    """A scripted cumulative-ops sampler."""

    def __init__(self, rates):
        self.rates = rates  # ops/s per shard, applied per sample call
        self.totals = {name: 0.0 for name in rates}
        self.clock = None

    def sample(self):
        if self.clock is not None:
            now = self.clock()
            for name, rate in self.rates.items():
                self.totals[name] = rate * now
        return dict(self.totals)


def test_autoscaler_triggers_on_sustained_per_shard_load():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 500.0, "b": 500.0})
    load.clock = lambda: scheduler.now
    scaled = []

    def scale_up():
        # Growing the ring dilutes per-shard load below the threshold.
        load.rates = {"a": 50.0, "b": 50.0, "c": 50.0}
        load.totals["c"] = 0.0
        scaled.append(scheduler.now)

    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=scale_up, interval=1.0,
                             ops_per_shard=200.0, max_shards=4)
    scaler.start()
    scheduler.run(until=10.0)
    assert len(scaled) == 1, "one scale-up must absorb the load spike"
    assert scaler.last_rate_per_shard < 200.0
    assert scaler.samples_taken >= 5


def test_autoscaler_respects_max_shards_and_busy():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 500.0})
    load.clock = lambda: scheduler.now
    scaled = []
    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=lambda: scaled.append(1), interval=1.0,
                             ops_per_shard=100.0, max_shards=1)
    scaler.start()
    scheduler.run(until=5.0)
    assert scaled == [], "a ring at max_shards must never grow"

    busy_scaler = ShardAutoscaler(scheduler, sample=load.sample,
                                  scale_up=lambda: scaled.append(1),
                                  interval=1.0, ops_per_shard=100.0,
                                  max_shards=4, busy=lambda: True)
    busy_scaler.start()
    scheduler.run(until=10.0)
    assert scaled == [], "a migrating ring must not trigger another change"


def test_autoscaler_waits_out_the_migration_as_cooldown():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 500.0})
    load.clock = lambda: scheduler.now
    started = []

    def fake_migration():
        yield Timeout(5.0)

    def scale_up():
        started.append(scheduler.now)
        return scheduler.spawn(fake_migration(), name="fake-migration")

    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=scale_up, interval=1.0,
                             ops_per_shard=100.0, max_shards=8)
    scaler.start()
    scheduler.run(until=7.0)
    assert len(started) >= 1
    if len(started) > 1:
        assert started[1] - started[0] >= 5.0, \
            "the second trigger must wait out the first migration"


def test_autoscaler_stop_ends_the_loop():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 500.0})
    scaled = []
    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=lambda: scaled.append(1), interval=1.0,
                             ops_per_shard=100.0)
    scaler.start()
    scaler.stop()
    scheduler.run(until=5.0)
    assert scaled == []


def test_autoscaler_rejects_bad_interval():
    with pytest.raises(ValueError):
        ShardAutoscaler(Scheduler(), sample=dict, scale_up=lambda: None,
                        interval=0.0)


def test_mark_dirty_unconfirms_arcs():
    """The un-confirmation channel: dirty UIDs leave the confirmed set
    and the drain reports there was something to re-confirm."""
    from repro.naming import ReshardManager

    ring = ShardRouter(["a", "b"], replicas=8)
    target = ring.clone()
    target.add_node("c")
    ring.transition = RingTransition(target, epoch=1)

    class _Node:  # the manager only touches scheduler.now here
        class scheduler:
            now = 0.0
        name = "coord"
        rpc = None
        sync_rpc = None
        sync_suffix = ""

    manager = ReshardManager(_Node, ring, replication=2)
    done = {"sys:1", "sys:2", "sys:3"}
    ring.transition.mark_dirty("sys:2")
    assert manager._unconfirm_dirty(done) is True
    assert done == {"sys:1", "sys:3"}
    assert ring.transition.dirty == set()
    assert manager._unconfirm_dirty(done) is False  # drained: nothing left


def test_autoscaler_scale_down_needs_a_full_quiet_cooldown():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 1.0, "b": 0.0, "c": 2.0})
    load.clock = lambda: scheduler.now
    drained = []
    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=lambda: None, interval=1.0,
                             ops_per_shard=200.0,
                             scale_down=drained.append,
                             low_ops_per_shard=50.0,
                             min_shards=2, down_after=3)
    scaler.start()
    scheduler.run(until=2.5)
    assert drained == [], "two quiet samples are not a cooldown"
    scheduler.run(until=10.0)
    assert drained, "a full quiet cooldown must trigger the drain"
    assert drained[0] == "b", "the least-loaded host is the victim"


def test_autoscaler_scale_down_respects_min_shards():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 0.0, "b": 0.0})
    load.clock = lambda: scheduler.now
    drained = []
    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=lambda: None, interval=1.0,
                             ops_per_shard=200.0,
                             scale_down=drained.append,
                             low_ops_per_shard=50.0,
                             min_shards=2, down_after=2)
    scaler.start()
    scheduler.run(until=10.0)
    assert drained == [], "a ring at min_shards must never drain"


def test_autoscaler_quiet_streak_resets_on_a_loud_sample():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 10.0, "b": 10.0, "c": 10.0})
    load.clock = lambda: scheduler.now
    drained = []
    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=lambda: None, interval=1.0,
                             ops_per_shard=200.0,
                             scale_down=drained.append,
                             low_ops_per_shard=50.0,
                             min_shards=2, down_after=3)
    scaler.start()

    def spike():
        # One loud sample mid-cooldown: every shard jumps for a second.
        load.rates = {"a": 500.0, "b": 500.0, "c": 500.0}
        scheduler.schedule(1.0, lambda: load.rates.update(
            {"a": 10.0, "b": 10.0, "c": 10.0}))

    scheduler.schedule(2.5, spike)
    scheduler.run(until=4.5)
    assert drained == [], "the spike must restart the quiet streak"
    scheduler.run(until=10.0)
    assert drained, "quiet re-sustained past the spike drains again"


def test_autoscaler_hysteresis_rejects_overlapping_watermarks():
    with pytest.raises(ValueError):
        ShardAutoscaler(Scheduler(), sample=dict, scale_up=lambda: None,
                        ops_per_shard=100.0, low_ops_per_shard=60.0,
                        scale_down=lambda name: None)


def test_autoscaler_busy_freezes_the_quiet_streak():
    scheduler = Scheduler()
    load = _FakeLoad({"a": 0.0, "b": 0.0, "c": 0.0})
    load.clock = lambda: scheduler.now
    drained = []
    scaler = ShardAutoscaler(scheduler, sample=load.sample,
                             scale_up=lambda: None, interval=1.0,
                             ops_per_shard=200.0,
                             scale_down=drained.append,
                             low_ops_per_shard=50.0,
                             min_shards=2, down_after=2,
                             busy=lambda: True)
    scaler.start()
    scheduler.run(until=10.0)
    assert drained == [], "a migrating ring must not also drain"
