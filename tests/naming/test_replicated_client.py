"""Tests for the replicated sharded client's failure handling.

The subtle case is not a *crashed* replica but a *live, queued* one: a
request that times out at the caller still executes when the replica's
single-server queue drains.  Skipping such a replica without enlisting
it would leave the stray op's provisional write and locks in place
forever (the host never crashes, so resync never runs).  The client
therefore fires a presumed abort behind every failed op to a
not-yet-enlisted replica; FIFO service order guarantees the abort lands
after the stray and rolls it back.
"""

from repro.actions import ActionStatus, AtomicAction
from repro.actions.action import ActionId
from repro.naming import GroupViewDatabase, ShardRouter
from repro.naming.group_view_db import SERVICE_NAME
from repro.naming.sharded_client import ShardedGroupViewDbClient
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)
NODES = ("shard-a", "shard-b")


def make_ring_world():
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    dbs, agents = {}, {}
    for name in NODES:
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
        db = GroupViewDatabase()
        boot = AtomicAction()
        db.define_object(boot.id.path, str(UID), ["h1", "h2"], ["t1"])
        db.commit(boot.id.path)
        agents[name].register(SERVICE_NAME, db)
        dbs[name] = db
    nic_c = net.attach("client")
    # The node-derived timeout (latency*6 + 0.05): far below the slow
    # replica's 0.2s service time, so its calls time out at the caller.
    client_agent = RpcAgent(s, nic_c, default_timeout=0.11,
                            demux=MessageDemux(nic_c))
    router = ShardRouter(list(NODES), replicas=8)
    client = ShardedGroupViewDbClient(client_agent, router, replication=2)
    return s, dbs, agents, router, client


def run(s, gen):
    return s.run_until_settled(s.spawn(gen), until=100.0)


def uses_at(db):
    snapshot = db.server_db.get_server_with_uses((0,), UID)
    db.server_db.locks.release_all(ActionId((0,)))
    return {h: dict(c) for h, c in snapshot.uses.items()}


def test_stray_write_on_timed_out_live_replica_is_presume_aborted():
    s, dbs, agents, router, client = make_ring_world()
    primary, successor = router.preference_list(UID, 2)
    # Live but overloaded: every call times out at the caller (~0.11s)
    # yet still executes when the queue drains (0.2s service time).
    agents[successor].service_time = 0.2
    action = AtomicAction(node="client")

    def body():
        yield from client.increment(action, "client", UID, ["h1"])
        return (yield from action.commit())

    status = run(s, body())
    assert status is ActionStatus.COMMITTED  # the reached replica decides
    s.run(until=10.0)  # drain the slow queue: stray increment, then abort

    slow_db = dbs[successor]
    assert slow_db.server_db.pending_undo_count == 0, \
        "the stray increment must be rolled back, not left provisional"
    assert not slow_db.server_db.locks.is_locked(("sv", UID)), \
        "the stray op's write lock must not outlive the presumed abort"
    assert uses_at(slow_db)["h1"] == {}, "the stray write is disowned"
    assert uses_at(dbs[primary])["h1"] == {"client": 1}, \
        "the enlisted replica committed the real write"
    # The entry stays writable on the slow replica afterwards.
    probe = AtomicAction(node="probe")
    slow_db.increment(probe.id.path, "probe", str(UID), ["h1"])
    slow_db.abort(probe.id.path)


def test_stray_read_lock_on_slow_primary_is_released():
    s, dbs, agents, router, client = make_ring_world()
    primary, successor = router.preference_list(UID, 2)
    agents[primary].service_time = 0.2
    action = AtomicAction(node="client")

    def body():
        hosts = yield from client.get_server(action, UID)
        yield from action.commit()
        return hosts

    hosts = run(s, body())
    assert hosts == ["h1", "h2"]  # served by the successor (failover)
    s.run(until=10.0)
    assert not dbs[primary].server_db.locks.is_locked(("sv", UID)), \
        "the timed-out read's stray lock must be presume-aborted"
    assert dbs[primary].server_db.pending_undo_count == 0
