"""Tests for the use-list cleanup daemon (paper section 4.1.3)."""

from repro.actions import AtomicAction
from repro.naming import GroupViewDatabase, UseListCleaner
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)


class PingService:
    def __init__(self):
        self.alive = True

    def ping(self):
        if not self.alive:
            raise RuntimeError("should be unreachable")
        return "pong"


def make_world():
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    nic_db = net.attach("db")
    db_agent = RpcAgent(s, nic_db, demux=MessageDemux(nic_db))
    db = GroupViewDatabase()
    boot = AtomicAction()
    db.define_object(boot.id.path, str(UID), ["h1", "h2"], ["t1"])
    db.commit(boot.id.path)
    nic_client = net.attach("c1")
    client_agent = RpcAgent(s, nic_client, demux=MessageDemux(nic_client))
    client_agent.register("client", PingService())
    cleaner = UseListCleaner(s, db_agent, db, interval=1.0)
    return s, net, db, cleaner


def use_lists(db):
    probe = AtomicAction()
    snapshot = db.server_db.get_server_with_uses(probe.id.path, UID)
    db.server_db.abort(probe.id.path)
    return {h: dict(c) for h, c in snapshot.uses.items()}


def bind_client(db, client_node="c1", hosts=("h1",)):
    action = AtomicAction()
    db.increment(action.id.path, client_node, str(UID), list(hosts))
    db.commit(action.id.path)


def run_round(s, cleaner):
    def body():
        return (yield from cleaner.run_once())
    return s.run_until_settled(s.spawn(body()), until=1000.0)


def test_live_client_counters_survive():
    s, net, db, cleaner = make_world()
    bind_client(db, "c1")
    purged = run_round(s, cleaner)
    assert purged == []
    assert use_lists(db)["h1"] == {"c1": 1}


def test_dead_client_counters_purged():
    s, net, db, cleaner = make_world()
    bind_client(db, "c1", hosts=("h1", "h2"))
    net.interface("c1").up = False  # the client node crashes
    purged = run_round(s, cleaner)
    assert purged == ["c1"]
    assert use_lists(db) == {"h1": {}, "h2": {}}
    assert cleaner.clients_purged == 1


def test_unknown_client_node_purged():
    """A client that never had a ping service (e.g. never re-registered)."""
    s, net, db, cleaner = make_world()
    bind_client(db, "ghost-node")
    purged = run_round(s, cleaner)
    assert purged == ["ghost-node"]


def test_mixed_live_and_dead_clients():
    s, net, db, cleaner = make_world()
    bind_client(db, "c1", hosts=("h1",))
    bind_client(db, "ghost", hosts=("h1",))
    purged = run_round(s, cleaner)
    assert purged == ["ghost"]
    assert use_lists(db)["h1"] == {"c1": 1}


def test_cleaner_idles_while_its_own_host_is_down():
    """A colocated daemon must not act while its node is crashed: every
    ping from a downed interface fails instantly, so a round run during
    the outage would 'detect' all clients as dead and purge them."""
    s, net, db, cleaner = make_world()
    bind_client(db, "c1")
    net.interface("db").up = False  # the shard host crashes
    purged = run_round(s, cleaner)
    assert purged == []
    assert use_lists(db)["h1"] == {"c1": 1}, \
        "a live client's counters must survive the host's own outage"
    net.interface("db").up = True
    assert run_round(s, cleaner) == []  # c1 answers pings again


def test_periodic_daemon_runs():
    s, net, db, cleaner = make_world()
    bind_client(db, "ghost")
    cleaner.start()
    s.run(until=5.0)
    assert cleaner.rounds >= 3
    assert use_lists(db)["h1"] == {}
    cleaner.stop()


def test_purge_skips_write_locked_entry_until_next_round():
    s, net, db, cleaner = make_world()
    bind_client(db, "ghost")
    holder = AtomicAction()
    db.remove(holder.id.path, str(UID), "h3")  # write lock on the entry
    purged = run_round(s, cleaner)
    assert purged == []  # could not read the entry this round
    db.abort(holder.id.path)
    purged = run_round(s, cleaner)
    assert purged == ["ghost"]


def test_purge_respects_lock_taken_while_ping_in_flight():
    """Regression for the lock-bypass bug: a binder that write-locks an
    entry *after* the cleaner's scan but before its purge (the ping RPC
    is in flight in between) must not have the purge interleave with
    it -- the entry is skipped and retried next round."""
    s, net, db, cleaner = make_world()
    bind_client(db, "ghost", hosts=("h1",))
    binder = AtomicAction()

    def lock_during_ping():
        from repro.sim.process import Timeout
        yield Timeout(0.005)  # the ghost ping takes >= interval/2 = 0.5
        db.increment(binder.id.path, "c1", str(UID), ["h1"])

    s.spawn(lock_during_ping())
    purged = run_round(s, cleaner)
    assert purged == []  # the live binder's write lock won
    # The binder's provisional counter AND the ghost's are both intact.
    holders = db.server_db.locks.holders_of(("sv", UID))
    assert [owner.path for owner, _ in holders] == [binder.id.path]
    db.commit(binder.id.path)
    assert use_lists(db)["h1"] == {"ghost": 1, "c1": 1}
    assert db.metrics.counter_value("server_db.purge_skipped") >= 1
    # Next round (entry unlocked) the ghost is purged cleanly.
    purged = run_round(s, cleaner)
    assert purged == ["ghost"]
    assert use_lists(db)["h1"] == {"c1": 1}


def test_purge_terminates_through_the_action_machinery():
    """After a purge round, the cleaner's actions are fully resolved:
    no locks linger in the table and the undo log is empty."""
    s, net, db, cleaner = make_world()
    bind_client(db, "ghost", hosts=("h1", "h2"))
    purged = run_round(s, cleaner)
    assert purged == ["ghost"]
    assert not db.server_db.locks.is_locked(("sv", UID))
    assert db.server_db.locks.owners() == set()
    assert db.server_db.pending_undo_count == 0


def test_collect_probe_uses_allocated_action_id():
    """Regression for the magic ``(0,)`` probe id: a (harness) lock
    owned by action id ``(0,)`` must survive a cleanup round instead of
    being swept up by the collector's lock release."""
    from repro.actions.action import ActionId
    from repro.actions.locks import LockMode
    s, net, db, cleaner = make_world()
    bind_client(db, "ghost")
    boot_owner = ActionId((0,))
    db.server_db.locks.try_lock(boot_owner, ("sv", UID), LockMode.READ)
    run_round(s, cleaner)
    assert db.server_db.locks.mode_held(boot_owner, ("sv", UID)) \
        is LockMode.READ
