"""Tests for binding behaviours added during implementation: the
read-only rotation spread and the unbind retry loop."""

import zlib

import pytest

from repro.actions import ActionStatus, AtomicAction

from tests.naming.test_binding import UID, World
from repro.naming.binding import IndependentTopLevelBinding, StandardBinding


def test_read_only_rotation_is_stable_per_client():
    world_a = World(StandardBinding)
    action1 = AtomicAction(node="client")
    first = world_a.run_bind(action1, read_only=True)
    world_b = World(StandardBinding)
    action2 = AtomicAction(node="client")
    second = world_b.run_bind(action2, read_only=True)
    assert first.bound_hosts == second.bound_hosts  # same client -> same node


def test_read_only_rotation_spreads_across_client_names():
    """Different client names should not all pick the same server."""
    sv = ("h1", "h2", "h3")
    chosen = set()
    for i in range(12):
        name = f"client{i}"
        rotation = zlib.crc32(name.encode()) % len(sv)
        chosen.add(sv[rotation])
    assert len(chosen) > 1


def test_read_only_rotation_falls_through_dead_convenient_node():
    world = World(StandardBinding, dead=("h2",))
    # Find a client name whose rotation starts at the dead h2.
    name = next(f"c{i}" for i in range(100)
                if zlib.crc32(f"c{i}".encode()) % 3 == 1)
    world.scheme.client_node = name
    action = AtomicAction(node=name)
    outcome = world.run_bind(action, read_only=True)
    assert outcome.bound_hosts == ["h3"]  # next in the rotated order
    assert outcome.failed_hosts == ["h2"]


def test_update_intent_lock_blocks_second_binder_immediately():
    """for_update=True: the second concurrent binder is refused at the
    read, not at a doomed promotion later."""
    world = World(IndependentTopLevelBinding)
    holder = AtomicAction()
    world.db.server_db.get_server_with_uses(
        holder.id.path, UID, for_update=True)
    action = AtomicAction(node="client")
    from repro.actions import LockRefused
    with pytest.raises(LockRefused):
        world.run_bind(action)
    world.db.server_db.abort(holder.id.path)
    action2 = AtomicAction(node="client")
    outcome = world.run_bind(action2)
    assert outcome.bound


def test_unbind_retries_through_transient_lock_conflict():
    world = World(IndependentTopLevelBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    status = world.run_commit(action)
    assert status is ActionStatus.COMMITTED

    # Hold the entry's write lock for a while, then release: the unbind
    # must retry through the conflict and still decrement.
    holder = AtomicAction()
    world.db.server_db.get_server_with_uses(
        holder.id.path, UID, for_update=True)
    world.scheduler.schedule(0.12, lambda: world.db.server_db.abort(
        holder.id.path))
    world.run_unbind(outcome)
    assert world.uses_now() == {"h1": {}, "h2": {}, "h3": {}}


def test_unbind_gives_up_after_bounded_attempts():
    world = World(IndependentTopLevelBinding)
    world.scheme.unbind_attempts = 2
    world.scheme.unbind_backoff = 0.01
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    world.run_commit(action)

    holder = AtomicAction()  # never released during the retries
    world.db.server_db.get_server_with_uses(
        holder.id.path, UID, for_update=True)
    world.run_unbind(outcome)
    gave_up = world.metrics.counter_value(
        "binding.independent.unbind_gave_up")
    assert gave_up == 1
    # The counters remain (orphans) -- exactly what the cleaner repairs.
    world.db.server_db.abort(holder.id.path)
    assert world.uses_now()["h1"] == {"client": 1}
