"""Tests for spread reads and read-repair on the replicated ring.

The spread policy must rotate hot-arc reads across the whole replica
set (that is the load-balancing win) without ever serving a
transition's not-yet-copied incoming owners; read-repair must turn the
staleness a read *observes* -- a replica disclaiming an entry its
peers hold, or a lagging write version caught by the sampled verify --
into a lock-guarded, version-gated install on the laggard.
"""

from repro.actions import ActionStatus, AtomicAction
from repro.actions.action import ActionId
from repro.naming import GroupViewDatabase, ReadRepairer, ShardRouter
from repro.naming.group_view_db import SERVICE_NAME, SYNC_SERVICE_NAME
from repro.naming.shard_router import RingTransition
from repro.naming.sharded_client import ShardedGroupViewDbClient
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)
NODES = ("shard-a", "shard-b", "shard-c")


def make_ring_world(replication=3, read_policy="primary", repair=False,
                    verify_interval=None):
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    dbs, agents = {}, {}
    for name in NODES:
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
        db = GroupViewDatabase()
        boot = AtomicAction()
        db.define_object(boot.id.path, str(UID), ["h1", "h2"], ["t1"])
        db.commit(boot.id.path)
        agents[name].register(SERVICE_NAME, db)
        agents[name].register(SYNC_SERVICE_NAME, db)  # the repair plane
        dbs[name] = db
    nic_c = net.attach("client")
    client_agent = RpcAgent(s, nic_c, default_timeout=0.5,
                            demux=MessageDemux(nic_c))
    router = ShardRouter(list(NODES), replicas=8)
    repairer = None
    if repair:
        repairer = ReadRepairer(s, client_agent, router, replication,
                                min_interval=0.0,
                                verify_interval=verify_interval)
    client = ShardedGroupViewDbClient(client_agent, router,
                                      replication=replication,
                                      read_policy=read_policy,
                                      repair=repairer)
    return s, dbs, agents, router, client


def run(s, gen):
    return s.run_until_settled(s.spawn(gen), until=100.0)


def one_read(s, client, method="get_server"):
    action = AtomicAction(node="client")

    def body():
        result = yield from getattr(client, method)(action, UID)
        yield from action.commit()
        return result

    return run(s, body())


def reads_served(dbs):
    return {name: db.server_db.metrics.counter_value("server_db.get_server")
            for name, db in dbs.items()}


def test_primary_policy_always_reads_the_preference_head():
    s, dbs, agents, router, client = make_ring_world(read_policy="primary")
    head = router.preference_list(UID, 3)[0]
    for _ in range(6):
        one_read(s, client)
    served = reads_served(dbs)
    assert served[head] == 6
    assert all(count == 0 for name, count in served.items() if name != head)


def test_spread_policy_rotates_over_every_replica():
    s, dbs, agents, router, client = make_ring_world(read_policy="spread")
    for _ in range(6):
        one_read(s, client)
    served = reads_served(dbs)
    assert all(count == 2 for count in served.values()), served


def test_spread_still_fails_over_past_a_dead_replica():
    s, dbs, agents, router, client = make_ring_world(read_policy="spread")
    victim = router.preference_list(UID, 3)[1]
    agents[victim].unregister(SERVICE_NAME)
    agents[victim]._nic.up = False
    for _ in range(6):
        assert one_read(s, client) == ["h1", "h2"]
    served = reads_served(dbs)
    assert served[victim] == 0
    assert sum(served.values()) == 6


def test_transition_reads_stay_on_the_old_epoch():
    """A staged transition's incoming owners may not be copied yet:
    reads must exhaust the old epoch's replicas first, spread or not."""
    s, dbs, agents, router, client = make_ring_world(replication=2,
                                                     read_policy="spread")
    old_plist = router.preference_list(UID, 2)
    newcomer = [n for n in NODES if n not in old_plist][0]
    stale = dbs[newcomer]
    parsed = Uid.parse(str(UID))
    del stale.server_db._entries[parsed]  # the newcomer holds nothing
    del stale.state_db._entries[parsed]
    target = ShardRouter([newcomer], replicas=8)
    router.transition = RingTransition(target, epoch=1)

    for _ in range(4):
        assert one_read(s, client) == ["h1", "h2"]
    assert reads_served(dbs)[newcomer] == 0, \
        "an uncopied incoming owner must not serve reads"

    # Writes, though, flow through both epochs (dual ownership).
    action = AtomicAction(node="client")

    def write():
        yield from client.increment(action, "client", UID, ["h1"])
        return (yield from action.commit())

    assert run(s, write()) is ActionStatus.COMMITTED
    for name in old_plist:
        snapshot = dbs[name].server_db.get_server_with_uses((0,), parsed)
        dbs[name].server_db.locks.release_all(ActionId((0,)))
        assert dict(snapshot.uses["h1"]) == {"client": 1}


def test_write_skipping_a_replica_marks_the_transition_dirty():
    """A dual-ownership write that cannot reach a replica must flag
    the UID so the migration re-confirms its arc before flipping."""
    s, dbs, agents, router, client = make_ring_world(replication=2)
    old_plist = router.preference_list(UID, 2)
    newcomer = [n for n in NODES if n not in old_plist][0]
    target = ShardRouter([newcomer], replicas=8)
    transition = RingTransition(target, epoch=1)
    router.transition = transition
    agents[newcomer].unregister(SERVICE_NAME)
    agents[newcomer]._nic.up = False  # the incoming owner is dark

    action = AtomicAction(node="client")

    def write():
        yield from client.increment(action, "client", UID, ["h1"])
        return (yield from action.commit())

    assert run(s, write()) is ActionStatus.COMMITTED  # old epoch took it
    assert str(UID) in transition.dirty, \
        "the skipped incoming owner must un-confirm the arc"


def test_unknown_object_failover_triggers_a_reseed():
    s, dbs, agents, router, client = make_ring_world(repair=True)
    head = router.preference_list(UID, 3)[0]
    parsed = Uid.parse(str(UID))
    del dbs[head].server_db._entries[parsed]  # stale-missing replica
    del dbs[head].state_db._entries[parsed]

    assert one_read(s, client) == ["h1", "h2"]  # served by a successor
    assert client.repair.repairs_triggered == 1
    s.run(until=s.now + 5.0)  # let the background repair land
    assert dbs[head].knows(str(UID)), \
        "the failover's evidence must re-seed the stale replica"
    assert client.repair.entries_repaired >= 1


def test_sampled_verify_repairs_a_silently_lagging_replica():
    """The residual resync window: a replica that serves while behind
    answers reads without any error.  The sampled version verify is
    what catches it."""
    s, dbs, agents, router, client = make_ring_world(repair=True,
                                                     verify_interval=0.0)
    plist = router.preference_list(UID, 3)
    head, laggard = plist[0], plist[1]
    # A committed write that only the head (and third replica) took.
    action = AtomicAction(node="test")
    for name in plist:
        if name != laggard:
            dbs[name].increment(action.id.path, "binder", str(UID), ["h1"])
            dbs[name].commit(action.id.path)

    assert one_read(s, client) == ["h1", "h2"]  # head serves, no error
    s.run(until=s.now + 5.0)
    snapshot = dbs[laggard].server_db.get_server_with_uses((0,),
                                                           Uid.parse(str(UID)))
    dbs[laggard].server_db.locks.release_all(ActionId((0,)))
    assert dict(snapshot.uses["h1"]) == {"binder": 1}, \
        "the verify must pull the laggard level with its peers"


def test_repairs_are_throttled_per_uid():
    s, dbs, agents, router, client = make_ring_world(repair=True)
    client.repair.min_interval = 10.0
    head = router.preference_list(UID, 3)[0]
    parsed = Uid.parse(str(UID))
    del dbs[head].server_db._entries[parsed]
    del dbs[head].state_db._entries[parsed]
    for _ in range(5):
        one_read(s, client)
    assert client.repair.repairs_triggered == 1, \
        "repeated evidence inside the throttle window must coalesce"
