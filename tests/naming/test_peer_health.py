"""Tests for the gray-failure peer-health tracker."""

import pytest

from repro.naming.peer_health import PeerHealthTracker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def make_tracker(clock=None, **kwargs):
    return PeerHealthTracker(clock or FakeClock(), **kwargs)


def feed_baseline(tracker, peers, latency=0.01, rounds=10):
    for _ in range(rounds):
        for peer in peers:
            tracker.observe(peer, latency)


def test_validates_parameters():
    clock = FakeClock()
    with pytest.raises(ValueError):
        PeerHealthTracker(clock, alpha=0.0)
    with pytest.raises(ValueError):
        PeerHealthTracker(clock, timeout_threshold=0)
    with pytest.raises(ValueError):
        PeerHealthTracker(clock, latency_factor=1.0)
    with pytest.raises(ValueError):
        PeerHealthTracker(clock, probation=0.0)


def test_timeout_streak_demotes():
    tracker = make_tracker(timeout_threshold=2)
    tracker.timeout("b")
    assert not tracker.is_gray("b")  # one timeout is routine
    tracker.timeout("b")
    assert tracker.is_gray("b")
    assert tracker.demotions == 1


def test_success_resets_the_streak():
    tracker = make_tracker(timeout_threshold=2)
    tracker.timeout("b")
    tracker.observe("b", 0.01)
    tracker.timeout("b")
    assert not tracker.is_gray("b")


def test_latency_outlier_demotes_against_the_cohort():
    tracker = make_tracker(min_samples=8, latency_factor=4.0)
    feed_baseline(tracker, ["a", "b"], latency=0.01)
    for _ in range(10):
        tracker.observe("c", 0.5)  # 50x the healthy cohort
    assert tracker.is_gray("c")
    assert tracker.gray_peers() == ["c"]


def test_no_demotion_before_min_samples():
    tracker = make_tracker(min_samples=8)
    feed_baseline(tracker, ["a", "b"], latency=0.01)
    for _ in range(7):
        tracker.observe("c", 1.0)
    assert not tracker.is_gray("c")


def test_reorder_moves_gray_to_the_back_stably():
    tracker = make_tracker(timeout_threshold=1)
    tracker.timeout("a")
    assert tracker.reorder(["a", "b", "c"]) == ["b", "c", "a"]
    # All-healthy order is returned unchanged (same contents).
    assert tracker.reorder(["b", "c"]) == ["b", "c"]


def test_probation_trial_and_redemption():
    clock = FakeClock()
    tracker = make_tracker(clock=clock, timeout_threshold=1, probation=10.0)
    feed_baseline(tracker, ["a", "b", "x"], latency=0.01)
    tracker.timeout("x")
    assert tracker.is_gray("x")
    clock.now = 11.0  # probation over: due a trial read
    assert not tracker.is_gray("x")
    assert tracker.reorder(["x", "a"]) == ["x", "a"]
    tracker.observe("x", 0.01)  # the trial read succeeds at normal speed
    assert not tracker.is_gray("x")
    clock.now = 50.0
    assert not tracker.is_gray("x")


def test_failed_trial_re_demotes():
    clock = FakeClock()
    tracker = make_tracker(clock=clock, timeout_threshold=1, probation=10.0,
                           min_samples=4, latency_factor=4.0)
    feed_baseline(tracker, ["a", "b"], latency=0.01)
    for _ in range(4):
        tracker.observe("x", 1.0)
    assert tracker.is_gray("x")
    clock.now = 20.0
    tracker.observe("x", 1.0)  # trial read: still crawling
    assert tracker.is_gray("x")


def test_demotions_counter_counts_transitions_only():
    tracker = make_tracker(timeout_threshold=1)
    tracker.timeout("a")
    tracker.timeout("a")
    tracker.timeout("a")
    assert tracker.demotions == 1
