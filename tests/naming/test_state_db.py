"""Tests for the Object State database (paper section 4.2)."""

import pytest

from repro.actions import AtomicAction, LockRefused, PromotionRefused
from repro.naming import ObjectStateDatabase, UnknownObject
from repro.storage import Uid

UID = Uid("sys", 1)
UID2 = Uid("sys", 2)


def make_db(hosts=("beta", "gamma"), exclude_write=True):
    db = ObjectStateDatabase(use_exclude_write_lock=exclude_write)
    boot = AtomicAction()
    db.define(boot.id.path, UID, list(hosts))
    db.define(boot.id.path, UID2, list(hosts))
    db.commit(boot.id.path)
    return db


def test_get_view():
    db = make_db()
    action = AtomicAction()
    assert db.get_view(action.id.path, UID) == ["beta", "gamma"]


def test_get_view_unknown():
    db = make_db()
    with pytest.raises(UnknownObject):
        db.get_view(AtomicAction().id.path, Uid("sys", 9))


def test_exclude_removes_hosts():
    db = make_db()
    action = AtomicAction()
    db.exclude(action.id.path, [(UID, ["gamma"])])
    assert db.get_view(action.id.path, UID) == ["beta"]
    db.commit(action.id.path)
    check = AtomicAction()
    assert db.get_view(check.id.path, UID) == ["beta"]


def test_exclude_multi_object_form():
    """The paper's Exclude takes a list of <objectname, nodelist> pairs."""
    db = make_db()
    action = AtomicAction()
    db.exclude(action.id.path, [(UID, ["beta"]), (UID2, ["gamma"])])
    assert db.get_view(action.id.path, UID) == ["gamma"]
    assert db.get_view(action.id.path, UID2) == ["beta"]


def test_exclude_undone_on_abort():
    db = make_db()
    action = AtomicAction()
    db.exclude(action.id.path, [(UID, ["beta", "gamma"])])
    db.abort(action.id.path)
    check = AtomicAction()
    assert db.get_view(check.id.path, UID) == ["beta", "gamma"]


def test_exclude_unknown_host_is_noop():
    db = make_db()
    action = AtomicAction()
    db.exclude(action.id.path, [(UID, ["ghost"])])
    assert db.get_view(action.id.path, UID) == ["beta", "gamma"]


def test_exclude_with_exclude_write_shares_with_readers():
    """Section 4.2.1: the exclude-write lock coexists with read locks."""
    db = make_db(exclude_write=True)
    reader = AtomicAction()
    db.get_view(reader.id.path, UID)
    committer = AtomicAction()
    db.get_view(committer.id.path, UID)
    db.exclude(committer.id.path, [(UID, ["gamma"])])  # succeeds
    # Readers still see the pre-exclude view?  No -- exclusion applies
    # immediately; but the reader's lock was never violated.
    db.commit(committer.id.path)


def test_exclude_with_write_mode_refused_under_shared_readers():
    """Without the optimisation, promotion is refused -> must abort."""
    db = make_db(exclude_write=False)
    reader = AtomicAction()
    db.get_view(reader.id.path, UID)
    committer = AtomicAction()
    db.get_view(committer.id.path, UID)
    with pytest.raises(PromotionRefused):
        db.exclude(committer.id.path, [(UID, ["gamma"])])


def test_exclude_write_mode_sole_client_succeeds_either_way():
    db = make_db(exclude_write=False)
    committer = AtomicAction()
    db.get_view(committer.id.path, UID)
    db.exclude(committer.id.path, [(UID, ["gamma"])])
    db.commit(committer.id.path)


def test_two_concurrent_excluders_conflict():
    db = make_db(exclude_write=True)
    a, b = AtomicAction(), AtomicAction()
    db.exclude(a.id.path, [(UID, ["beta"])])
    with pytest.raises(LockRefused):
        db.exclude(b.id.path, [(UID, ["gamma"])])


def test_include_adds_host():
    db = make_db(hosts=("beta",))
    action = AtomicAction()
    db.include(action.id.path, UID, "delta")
    db.commit(action.id.path)
    check = AtomicAction()
    assert db.get_view(check.id.path, UID) == ["beta", "delta"]


def test_include_idempotent():
    db = make_db()
    action = AtomicAction()
    db.include(action.id.path, UID, "beta")
    db.commit(action.id.path)
    check = AtomicAction()
    assert db.get_view(check.id.path, UID) == ["beta", "gamma"]


def test_include_undone_on_abort():
    db = make_db(hosts=("beta",))
    action = AtomicAction()
    db.include(action.id.path, UID, "delta")
    db.abort(action.id.path)
    check = AtomicAction()
    assert db.get_view(check.id.path, UID) == ["beta"]


def test_include_requires_write_lock():
    db = make_db()
    reader = AtomicAction()
    db.get_view(reader.id.path, UID)
    includer = AtomicAction()
    with pytest.raises(LockRefused):
        db.include(includer.id.path, UID, "delta")


def test_exclude_then_include_same_action():
    """A full crash-recover cycle within one administrative action."""
    db = make_db()
    action = AtomicAction()
    db.exclude(action.id.path, [(UID, ["gamma"])])
    db.include(action.id.path, UID, "gamma")
    db.commit(action.id.path)
    check = AtomicAction()
    assert db.get_view(check.id.path, UID) == ["beta", "gamma"]


def test_entries_are_independently_locked():
    db = make_db()
    a, b = AtomicAction(), AtomicAction()
    db.exclude(a.id.path, [(UID, ["beta"])])
    db.exclude(b.id.path, [(UID2, ["beta"])])  # different entry: no conflict
