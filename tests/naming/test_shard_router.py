"""Tests for the consistent-hash shard ring."""

import pytest

import repro.naming.shard_router as shard_router_module
from repro.naming import ShardRouter
from repro.storage.uid import Uid

KEYS = [Uid("sys", n) for n in range(400)]


def test_single_node_owns_everything():
    router = ShardRouter(["only"])
    assert all(router.shard_for(key) == "only" for key in KEYS)


def test_routing_is_deterministic_across_instances():
    a = ShardRouter(["n0", "n1", "n2"], replicas=32)
    b = ShardRouter(["n0", "n1", "n2"], replicas=32)
    assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]


def test_node_order_does_not_matter():
    a = ShardRouter(["n0", "n1", "n2"])
    b = ShardRouter(["n2", "n0", "n1"])
    assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]


def test_every_shard_gets_a_share():
    router = ShardRouter([f"n{i}" for i in range(8)])
    spread = router.spread(KEYS)
    assert set(spread) == {f"n{i}" for i in range(8)}
    assert all(count > 0 for count in spread.values())
    assert sum(spread.values()) == len(KEYS)


def test_adding_a_node_only_moves_keys_to_it():
    before = ShardRouter(["n0", "n1", "n2"])
    old = {k: before.shard_for(k) for k in KEYS}
    before.add_node("n3")
    moved = 0
    for key in KEYS:
        now = before.shard_for(key)
        if now != old[key]:
            assert now == "n3", "a grown ring must not shuffle old shards"
            moved += 1
    assert 0 < moved < len(KEYS)  # n3 took some arcs, not the whole ring


def test_removing_a_node_only_moves_its_keys():
    router = ShardRouter(["n0", "n1", "n2", "n3"])
    old = {k: router.shard_for(k) for k in KEYS}
    router.remove_node("n1")
    for key in KEYS:
        if old[key] != "n1":
            assert router.shard_for(key) == old[key]
        else:
            assert router.shard_for(key) != "n1"


def test_partition_groups_by_owner():
    router = ShardRouter(["n0", "n1"])
    groups = router.partition(KEYS)
    assert sum(len(g) for g in groups.values()) == len(KEYS)
    for shard, keys in groups.items():
        assert all(router.shard_for(k) == shard for k in keys)


def test_spread_includes_idle_shards():
    router = ShardRouter([f"n{i}" for i in range(4)])
    spread = router.spread([])
    assert spread == {"n0": 0, "n1": 0, "n2": 0, "n3": 0}


def test_len_and_nodes():
    router = ShardRouter(["a", "b"])
    assert len(router) == 2
    assert router.nodes == ["a", "b"]


def _scripted_hashes(table):
    """A deterministic stand-in for the md5 ring hash."""
    def fake_hash(text):
        return table[text]
    return fake_hash


def test_colliding_ring_points_do_not_depend_on_insertion_order(monkeypatch):
    """Two virtual nodes hashing to the same 32-bit point must resolve
    to the same owner no matter which host joined the ring first."""
    table = {"a#0": 100, "b#0": 100, "k": 40}
    monkeypatch.setattr(shard_router_module, "_ring_hash",
                        _scripted_hashes(table))
    first = ShardRouter(["a", "b"], replicas=1)
    second = ShardRouter(["b", "a"], replicas=1)
    assert first.shard_for("k") == second.shard_for("k") == "a"
    assert first.preference_list("k", 2) == second.preference_list("k", 2)


def test_partition_starting_exactly_on_a_point_belongs_to_that_point(monkeypatch):
    """Regression: ``bisect`` (right) assigned an arc starting exactly
    on a ring point to the *next* owner clockwise instead of the
    point's own.  With partition routing the boundary in question is a
    partition's start point."""
    start_of_p1 = 1 << (32 - shard_router_module.DEFAULT_PARTITION_POWER)
    table = {"x#0": start_of_p1, "y#0": 300, "k": start_of_p1 + 5}
    monkeypatch.setattr(shard_router_module, "_ring_hash",
                        _scripted_hashes(table))
    router = ShardRouter(["x", "y"], replicas=1)
    assert router.partition_owner(1) == "x"
    assert router.shard_for("k") == "x"
    assert router.preference_list("k", 2) == ["x", "y"]


def test_preference_list_is_distinct_and_primary_first():
    router = ShardRouter([f"n{i}" for i in range(5)])
    for key in KEYS:
        for n in range(1, 6):
            prefs = router.preference_list(key, n)
            assert len(prefs) == n
            assert len(set(prefs)) == n
            assert prefs[0] == router.shard_for(key)
            # Growing n only appends: shorter lists are prefixes.
            assert prefs[:n - 1] == router.preference_list(key, n - 1) \
                if n > 1 else True


def test_preference_list_clamps_to_the_ring_size():
    router = ShardRouter(["a", "b"])
    for key in KEYS[:20]:
        assert sorted(router.preference_list(key, 7)) == ["a", "b"]
    with pytest.raises(ValueError):
        router.preference_list("k", 0)


def test_preference_lists_survive_ring_growth_mostly_unchanged():
    """Consistent hashing's stability extends to replica sets: adding a
    host only edits preference lists in the arcs it claimed."""
    router = ShardRouter(["n0", "n1", "n2", "n3"])
    before = {k: router.preference_list(k, 2) for k in KEYS}
    router.add_node("n4")
    changed = 0
    for key in KEYS:
        now = router.preference_list(key, 2)
        if now != before[key]:
            assert "n4" in now, \
                "a grown ring must not reshuffle unrelated replica sets"
            changed += 1
    assert 0 < changed < len(KEYS)


def test_invalid_configurations_rejected():
    with pytest.raises(ValueError):
        ShardRouter([])
    with pytest.raises(ValueError):
        ShardRouter(["a"], replicas=0)
    router = ShardRouter(["a", "b"])
    with pytest.raises(ValueError):
        router.add_node("a")
    with pytest.raises(ValueError):
        router.remove_node("zzz")
    router.remove_node("b")
    with pytest.raises(ValueError):
        router.remove_node("a")  # never drop the last shard


# -- ring views and the fence epoch ------------------------------------------


def test_fence_epoch_advances_on_every_routing_change():
    from repro.naming.shard_router import RingTransition

    router = ShardRouter(["a", "b"], replicas=8)
    fence = router.fence_epoch
    router.add_node("c")
    assert router.fence_epoch == fence + 1
    router.remove_node("c")
    assert router.fence_epoch == fence + 2
    target = router.clone()
    target.add_node("d")
    router.transition = RingTransition(target, epoch=target.epoch)
    assert router.fence_epoch == fence + 3, "staging must advance the fence"
    router.transition = None
    assert router.fence_epoch == fence + 4, "clearing must advance the fence"
    # Unlike ``epoch`` (a membership counter reset at boot), the fence
    # is monotonic for the router's lifetime.
    assert router.epoch == 2


def test_view_is_cached_per_fence_epoch():
    router = ShardRouter(["a", "b"], replicas=8)
    assert router.view() is router.view()
    before = router.view()
    router.add_node("c")
    after = router.view()
    assert after is not before
    assert after.epoch == router.fence_epoch


def test_view_is_immutable_across_the_flip():
    """A captured view keeps routing by the membership it snapshot --
    the *fence*, not the snapshot, is what stops it acting stale."""
    router = ShardRouter(["a", "b"], replicas=8)
    view = router.view()
    router.add_node("c")
    assert view.nodes == ["a", "b"]
    assert set(router.view().nodes) == {"a", "b", "c"}
    for key in range(40):
        assert view.primary(key) in ("a", "b")
    assert view.epoch != router.fence_epoch


def test_view_write_set_and_read_order_during_a_transition():
    from repro.naming.shard_router import RingTransition

    router = ShardRouter(["a", "b", "c"], replicas=16)
    target = router.clone()
    target.add_node("d")
    router.transition = RingTransition(target, epoch=target.epoch)
    view = router.view()
    assert view.in_transition
    for key in range(60):
        old = router.preference_list(key, 2)
        union = view.write_set(key, 2)
        assert union[:len(old)] == old, "old owners come first"
        assert set(union) == set(old) | set(target.preference_list(key, 2))
        order = view.read_order(key, 2)
        assert order[:len(old)] == old, \
            "incoming owners must serve reads only as the last resort"
        rotated = view.read_order(key, 2, rotation=1)
        assert rotated[0] == old[1 % len(old)]
        assert set(rotated) == set(order)


def test_view_mark_dirty_reaches_the_live_transition():
    from repro.naming.shard_router import RingTransition

    router = ShardRouter(["a", "b"], replicas=8)
    target = router.clone()
    target.add_node("c")
    transition = RingTransition(target, epoch=target.epoch)
    router.transition = transition
    view = router.view()
    view.mark_dirty("sys:7")
    assert "sys:7" in transition.dirty
    # A view captured outside any transition reports nowhere.
    router.transition = None
    router.view().mark_dirty("sys:8")
    assert "sys:8" not in transition.dirty
