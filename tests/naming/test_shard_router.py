"""Tests for the consistent-hash shard ring."""

import pytest

from repro.naming import ShardRouter
from repro.storage.uid import Uid

KEYS = [Uid("sys", n) for n in range(400)]


def test_single_node_owns_everything():
    router = ShardRouter(["only"])
    assert all(router.shard_for(key) == "only" for key in KEYS)


def test_routing_is_deterministic_across_instances():
    a = ShardRouter(["n0", "n1", "n2"], replicas=32)
    b = ShardRouter(["n0", "n1", "n2"], replicas=32)
    assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]


def test_node_order_does_not_matter():
    a = ShardRouter(["n0", "n1", "n2"])
    b = ShardRouter(["n2", "n0", "n1"])
    assert [a.shard_for(k) for k in KEYS] == [b.shard_for(k) for k in KEYS]


def test_every_shard_gets_a_share():
    router = ShardRouter([f"n{i}" for i in range(8)])
    spread = router.spread(KEYS)
    assert set(spread) == {f"n{i}" for i in range(8)}
    assert all(count > 0 for count in spread.values())
    assert sum(spread.values()) == len(KEYS)


def test_adding_a_node_only_moves_keys_to_it():
    before = ShardRouter(["n0", "n1", "n2"])
    old = {k: before.shard_for(k) for k in KEYS}
    before.add_node("n3")
    moved = 0
    for key in KEYS:
        now = before.shard_for(key)
        if now != old[key]:
            assert now == "n3", "a grown ring must not shuffle old shards"
            moved += 1
    assert 0 < moved < len(KEYS)  # n3 took some arcs, not the whole ring


def test_removing_a_node_only_moves_its_keys():
    router = ShardRouter(["n0", "n1", "n2", "n3"])
    old = {k: router.shard_for(k) for k in KEYS}
    router.remove_node("n1")
    for key in KEYS:
        if old[key] != "n1":
            assert router.shard_for(key) == old[key]
        else:
            assert router.shard_for(key) != "n1"


def test_partition_groups_by_owner():
    router = ShardRouter(["n0", "n1"])
    groups = router.partition(KEYS)
    assert sum(len(g) for g in groups.values()) == len(KEYS)
    for shard, keys in groups.items():
        assert all(router.shard_for(k) == shard for k in keys)


def test_spread_includes_idle_shards():
    router = ShardRouter([f"n{i}" for i in range(4)])
    spread = router.spread([])
    assert spread == {"n0": 0, "n1": 0, "n2": 0, "n3": 0}


def test_len_and_nodes():
    router = ShardRouter(["a", "b"])
    assert len(router) == 2
    assert router.nodes == ["a", "b"]


def test_invalid_configurations_rejected():
    with pytest.raises(ValueError):
        ShardRouter([])
    with pytest.raises(ValueError):
        ShardRouter(["a"], replicas=0)
    router = ShardRouter(["a", "b"])
    with pytest.raises(ValueError):
        router.add_node("a")
    with pytest.raises(ValueError):
        router.remove_node("zzz")
    router.remove_node("b")
    with pytest.raises(ValueError):
        router.remove_node("a")  # never drop the last shard
