"""Tests for the three binding schemes (figures 6-8), in isolation.

The schemes are exercised against a real group-view database served
over simulated RPC, with a scripted binder standing in for server
activation: hosts listed in ``dead_hosts`` fail their bind attempts.
"""

import pytest

from repro.actions import ActionStatus, AtomicAction
from repro.naming import GroupViewDatabase
from repro.naming.binding import (
    BindFailed,
    IndependentTopLevelBinding,
    NestedTopLevelBinding,
    StandardBinding,
)
from repro.naming.db_client import GroupViewDbClient
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import MetricsRegistry, Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)


class World:
    def __init__(self, scheme_cls, sv=("h1", "h2", "h3"), dead=(),
                 **scheme_kwargs):
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, FixedLatency(0.01))
        self.metrics = MetricsRegistry()
        nic_db = self.network.attach("db")
        self.db_agent = RpcAgent(self.scheduler, nic_db,
                                 demux=MessageDemux(nic_db))
        self.db = GroupViewDatabase()
        self.db_agent.register("group_view_db", self.db)
        boot = AtomicAction()
        self.db.define_object(boot.id.path, str(UID), list(sv), ["t1"])
        self.db.commit(boot.id.path)

        nic_client = self.network.attach("client")
        self.client_agent = RpcAgent(self.scheduler, nic_client,
                                     demux=MessageDemux(nic_client))
        self.db_client = GroupViewDbClient(self.client_agent, "db")
        self.scheme = scheme_cls(self.db_client, "client",
                                 metrics=self.metrics, **scheme_kwargs)
        self.dead_hosts = set(dead)
        self.bind_attempts = []

    def binder(self, host, uid, action):
        self.bind_attempts.append(host)
        return host not in self.dead_hosts
        yield

    def run_bind(self, action, k=None, read_only=False):
        def body():
            return (yield from self.scheme.bind(action, UID, self.binder,
                                                k=k, read_only=read_only))
        return self.scheduler.run_until_settled(
            self.scheduler.spawn(body()), until=100.0)

    def run_unbind(self, outcome, within_action=None):
        def body():
            yield from self.scheme.unbind(UID, outcome,
                                          within_action=within_action)
        return self.scheduler.run_until_settled(
            self.scheduler.spawn(body()), until=100.0)

    def run_commit(self, action):
        def body():
            return (yield from action.commit())
        return self.scheduler.run_until_settled(
            self.scheduler.spawn(body()), until=100.0)

    def sv_now(self):
        probe = AtomicAction()
        hosts = self.db.get_server(probe.id.path, str(UID))
        self.db.abort(probe.id.path)
        return hosts

    def uses_now(self):
        probe = AtomicAction()
        snapshot = self.db.get_server_with_uses(probe.id.path, str(UID))
        self.db.abort(probe.id.path)
        return {h: dict(c) for h, c in snapshot.uses.items()}


# -- standard scheme (figure 6) ------------------------------------------------


def test_standard_binds_all_functioning_hosts():
    world = World(StandardBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    assert outcome.bound_hosts == ["h1", "h2", "h3"]
    assert outcome.failed_hosts == []


def test_standard_discovers_dead_servers_the_hard_way():
    world = World(StandardBinding, dead=("h1", "h2"))
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    assert outcome.bound_hosts == ["h3"]
    assert outcome.failed_hosts == ["h1", "h2"]
    # Crucially, Sv is NOT updated: the next client pays again.
    assert world.sv_now() == ["h1", "h2", "h3"]
    assert world.metrics.counter_value("binding.standard.failed_attempts") == 2


def test_standard_k_limits_activation():
    world = World(StandardBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action, k=1)
    assert outcome.bound_hosts == ["h1"]
    assert world.bind_attempts == ["h1"]


def test_standard_read_only_binds_single_server():
    world = World(StandardBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action, read_only=True)
    assert len(outcome.bound_hosts) == 1


def test_standard_all_dead_raises_bind_failed():
    world = World(StandardBinding, dead=("h1", "h2", "h3"))
    action = AtomicAction(node="client")
    with pytest.raises(BindFailed):
        world.run_bind(action)


def test_standard_read_lock_held_until_client_action_ends():
    world = World(StandardBinding)
    action = AtomicAction(node="client")
    world.run_bind(action)
    # A writer is blocked while the client action is open...
    writer = AtomicAction()
    from repro.actions import LockRefused
    with pytest.raises(LockRefused):
        world.db.insert(writer.id.path, str(UID), "h9")
    # ...and free after the client's top-level commit.
    status = world.run_commit(action)
    assert status is ActionStatus.COMMITTED
    writer2 = AtomicAction()
    world.db.insert(writer2.id.path, str(UID), "h9")


def test_standard_unbind_is_noop():
    world = World(StandardBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    world.run_unbind(outcome)
    assert world.uses_now() == {"h1": {}, "h2": {}, "h3": {}}


# -- independent top-level scheme (figure 7) -------------------------------------


def test_independent_increments_use_lists():
    world = World(IndependentTopLevelBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    uses = world.uses_now()
    assert uses["h1"] == {"client": 1}
    assert uses["h2"] == {"client": 1}
    assert uses["h3"] == {"client": 1}
    # The client action itself holds NO lock on the entry.
    writer = AtomicAction()
    world.db.remove(writer.id.path, str(UID), "h9")
    world.db.abort(writer.id.path)
    # Unbind decrements.
    world.run_unbind(outcome)
    assert world.uses_now() == {"h1": {}, "h2": {}, "h3": {}}


def test_independent_removes_failed_servers_from_sv():
    """Figure 7's payoff: Sv stays fresh."""
    world = World(IndependentTopLevelBinding, dead=("h1",))
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    assert outcome.bound_hosts == ["h2", "h3"]
    assert world.sv_now() == ["h2", "h3"]  # h1 Removed


def test_independent_k_respected_when_quiescent():
    world = World(IndependentTopLevelBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action, k=2)
    assert outcome.bound_hosts == ["h1", "h2"]


def test_independent_second_client_joins_used_servers():
    """Non-empty use lists force binding to the servers in use."""
    world = World(IndependentTopLevelBinding)
    first_action = AtomicAction(node="client")
    first = world.run_bind(first_action, k=1)
    assert first.bound_hosts == ["h1"]
    # Second client (same scheme instance = same client node) binds while
    # h1 is in use: it must join h1 even though k would allow free choice.
    second_action = AtomicAction(node="client")
    second = world.run_bind(second_action, k=1)
    assert second.bound_hosts == ["h1"]
    assert not second.use_lists_were_empty
    uses = world.uses_now()
    assert uses["h1"] == {"client": 2}


def test_independent_all_dead_raises():
    world = World(IndependentTopLevelBinding, dead=("h1", "h2", "h3"))
    action = AtomicAction(node="client")
    with pytest.raises(BindFailed):
        world.run_bind(action)
    # The failed servers were still Removed (that knowledge is useful).
    assert world.sv_now() == []


def test_independent_bind_uses_write_locks_on_db():
    world = World(IndependentTopLevelBinding)
    action = AtomicAction(node="client")
    world.run_bind(action)
    writes = world.db.metrics.counter_value("server_db.locks.write")
    assert writes >= 1  # Increment took a write lock


# -- nested top-level scheme (figure 8) --------------------------------------------


def test_nested_top_level_behaves_like_independent_for_binding():
    world = World(NestedTopLevelBinding, dead=("h2",))
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    assert outcome.bound_hosts == ["h1", "h3"]
    assert world.sv_now() == ["h1", "h3"]
    uses = world.uses_now()
    assert uses["h1"] == {"client": 1}


def test_nested_top_level_db_actions_survive_client_abort():
    """The db updates committed independently of the client action."""
    world = World(NestedTopLevelBinding, dead=("h1",))
    action = AtomicAction(node="client")
    world.run_bind(action)

    def abort_body():
        yield from action.abort()
    world.scheduler.run_until_settled(
        world.scheduler.spawn(abort_body()), until=100.0)
    # The Remove of h1 and the Increments remain committed.
    assert world.sv_now() == ["h2", "h3"]
    assert world.uses_now()["h2"] == {"client": 1}


def test_nested_top_level_unbind_within_action():
    world = World(NestedTopLevelBinding)
    action = AtomicAction(node="client")
    outcome = world.run_bind(action)
    world.run_unbind(outcome, within_action=action)
    assert world.uses_now() == {"h1": {}, "h2": {}, "h3": {}}
    status = world.run_commit(action)
    assert status is ActionStatus.COMMITTED
