"""Tests for the client-side database adapter."""

import pytest

from repro.actions import ActionStatus, AtomicAction, LockRefused, PromotionRefused
from repro.actions.records import RemoteParticipantRecord
from repro.naming import GroupViewDatabase, NotQuiescent, UnknownObject
from repro.naming.db_client import GroupViewDbClient
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)


def make_world():
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    nic_db = net.attach("db")
    db_agent = RpcAgent(s, nic_db, demux=MessageDemux(nic_db))
    db = GroupViewDatabase()
    boot = AtomicAction()
    db.define_object(boot.id.path, str(UID), ["h1", "h2"], ["t1", "t2"])
    db.commit(boot.id.path)
    db_agent.register("group_view_db", db)
    nic_c = net.attach("client")
    client_agent = RpcAgent(s, nic_c, demux=MessageDemux(nic_c))
    return s, net, db, GroupViewDbClient(client_agent, "db")


def run(s, gen):
    return s.run_until_settled(s.spawn(gen), until=100.0)


def test_error_types_mapped_back():
    s, net, db, client = make_world()
    action = AtomicAction(node="client")

    def body():
        return (yield from client.get_view(action, Uid("sys", 99)))

    with pytest.raises(UnknownObject):
        run(s, body())


def test_lock_refused_mapped_back():
    s, net, db, client = make_world()
    holder = AtomicAction()
    db.insert(holder.id.path, str(UID), "h3")  # write lock held locally
    action = AtomicAction(node="client")

    def body():
        return (yield from client.get_server(action, UID))

    with pytest.raises(LockRefused):
        run(s, body())


def test_not_quiescent_mapped_back():
    s, net, db, client = make_world()
    user = AtomicAction()
    db.increment(user.id.path, "cn", str(UID), ["h1"])
    db.commit(user.id.path)
    action = AtomicAction(node="client")

    def body():
        yield from client.insert(action, UID, "h1")

    with pytest.raises(NotQuiescent):
        run(s, body())


def test_enlists_participant_once_per_top_level_action():
    s, net, db, client = make_world()
    action = AtomicAction(node="client")

    def body():
        yield from client.get_server(action, UID)
        yield from client.get_view(action, UID)
        nested = AtomicAction(node="client", parent=action)
        yield from client.get_view(nested, UID)
        yield from nested.commit()

    run(s, body())
    participants = [r for r in action.records
                    if isinstance(r, RemoteParticipantRecord)]
    assert len(participants) == 1


def test_full_transactional_cycle_over_rpc():
    s, net, db, client = make_world()
    action = AtomicAction(node="client")

    def body():
        yield from client.exclude(action, [(UID, ["t2"])])
        yield from client.include(action, UID, "t3")
        return (yield from action.commit())

    status = run(s, body())
    assert status is ActionStatus.COMMITTED
    probe = AtomicAction()
    assert db.get_view(probe.id.path, str(UID)) == ["t1", "t3"]


def test_abort_over_rpc_rolls_back():
    s, net, db, client = make_world()
    action = AtomicAction(node="client")

    def body():
        yield from client.remove(action, UID, "h2")
        return (yield from action.abort())

    run(s, body())
    probe = AtomicAction()
    assert db.get_server(probe.id.path, str(UID)) == ["h1", "h2"]


def test_ping():
    s, net, db, client = make_world()

    def body():
        return (yield from client.ping())

    assert run(s, body()) is True
    net.interface("db").up = False

    def body2():
        return (yield from client.ping())

    assert run(s, body2()) is False


def test_define_object_via_client():
    s, net, db, client = make_world()
    action = AtomicAction(node="client")
    new_uid = Uid("sys", 50)

    def body():
        yield from client.define_object(action, new_uid, ["h9"], ["t9"])
        return (yield from action.commit())

    run(s, body())
    probe = AtomicAction()
    assert db.get_server(probe.id.path, str(new_uid)) == ["h9"]
