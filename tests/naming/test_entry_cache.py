"""Tests for the leased read plane (EntryCache + versioned reads).

The contract under test, bound by bound:

- a cache **hit** serves the binding without any network traffic at
  all (and without enlisting the name service in the action's 2PC);
- a **fence-epoch advance** -- any observable routing change -- kills
  every pre-change entry on its next lookup;
- a **lease expiry** falls back to an authoritative read and
  repopulates under a fresh lease;
- the owner's **own mutations invalidate write-through**, so a client
  never serves itself a binding it knows it changed;
- a **busy entry** (live action mid-flight) refuses the lock-free read
  and the client falls back to the authoritative locking path;
- with validation on, a cached read whose binding moved is **vetoed at
  prepare** (optimistic serializability).
"""

import pytest

from repro.actions import ActionStatus, AtomicAction
from repro.naming import GroupViewDatabase, ShardRouter
from repro.naming.entry_cache import EntryCache, LedgerRecord
from repro.naming.group_view_db import SERVICE_NAME, SYNC_SERVICE_NAME
from repro.naming.sharded_client import ShardedGroupViewDbClient
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)
NODES = ("shard-a", "shard-b", "shard-c")
LEASE = 5.0


def make_world(replication=2, lease=LEASE, validate=False, capacity=64,
               keep_ledger=True):
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    dbs, agents = {}, {}
    router = ShardRouter(list(NODES), replicas=8)
    for name in NODES:
        nic = net.attach(name)
        agents[name] = RpcAgent(s, nic, demux=MessageDemux(nic))
        db = GroupViewDatabase()
        boot = AtomicAction()
        db.define_object(boot.id.path, str(UID), ["h1", "h2"], ["t1"])
        db.commit(boot.id.path)
        agents[name].register(SERVICE_NAME, db,
                              fence=lambda: router.fence_epoch)
        agents[name].register(SYNC_SERVICE_NAME, db)
        dbs[name] = db
    nic_c = net.attach("client")
    client_agent = RpcAgent(s, nic_c, default_timeout=0.5,
                            demux=MessageDemux(nic_c))
    cache = EntryCache(lease, fence=lambda: router.fence_epoch,
                       clock=lambda: s.now, capacity=capacity,
                       keep_ledger=keep_ledger)
    client = ShardedGroupViewDbClient(client_agent, router,
                                      replication=replication,
                                      cache=cache, validate_leases=validate)
    return s, dbs, agents, router, client, client_agent


def run(s, gen):
    return s.run_until_settled(s.spawn(gen), until=100.0)


def advance(s, dt):
    """Advance the simulation clock by ``dt`` (the scheduler is
    event-driven: with nothing queued, time stands still)."""
    from repro.sim.process import Timeout

    def body():
        yield Timeout(dt)

    run(s, body())


def one_get_server(s, client):
    action = AtomicAction(node="client")

    def body():
        result = yield from client.get_server(action, UID)
        status = yield from action.commit()
        return result, status

    return run(s, body())


def served_reads(dbs):
    return sum(db.server_db.metrics.counter_value("server_db.get_server")
               for db in dbs.values())


def test_miss_populates_and_hit_serves_without_any_rpc():
    s, dbs, agents, router, client, agent = make_world()
    hosts, status = one_get_server(s, client)
    assert hosts == ["h1", "h2"] and status is ActionStatus.COMMITTED
    assert client.cache.misses == 1 and client.cache.hits == 0

    issued_before = agent.calls_issued
    for _ in range(5):
        hosts, status = one_get_server(s, client)
        assert hosts == ["h1", "h2"] and status is ActionStatus.COMMITTED
    assert agent.calls_issued == issued_before, \
        "a cache hit must not touch the network at all"
    assert client.cache.hits == 5
    assert client.cache.hit_rate == pytest.approx(5 / 6)


def test_miss_read_enlists_no_participant_and_leaves_no_lock():
    from repro.actions.records import RemoteParticipantRecord

    s, dbs, agents, router, client, agent = make_world()
    action = AtomicAction(node="client")

    def body():
        result = yield from client.get_server(action, UID)
        status = yield from action.commit()
        return result, status

    hosts, status = run(s, body())
    assert hosts == ["h1", "h2"] and status is ActionStatus.COMMITTED
    # The lock-free versioned read enlists no 2PC participant (the
    # commit is local-only) and leaves no lock behind on any shard.
    assert not any(isinstance(r, RemoteParticipantRecord)
                   for r in action.records), \
        "the leased plane must not enlist the name service"
    for db in dbs.values():
        assert not db.server_db.locks._table, "no lock may outlive the read"
        assert not db.state_db.locks._table


def test_fence_epoch_advance_invalidates_on_next_lookup():
    s, dbs, agents, router, client, agent = make_world()
    one_get_server(s, client)
    assert client.cache.lookup(str(UID)) is not None

    router.add_node("shard-d")  # any membership change advances the fence
    assert client.cache.lookup(str(UID)) is None
    assert client.cache.fenced == 1, \
        "a routing change must kill every pre-change entry"


def test_lease_expiry_falls_back_and_repopulates():
    s, dbs, agents, router, client, agent = make_world()
    one_get_server(s, client)
    advance(s, LEASE + 0.1)

    hosts, status = one_get_server(s, client)
    assert hosts == ["h1", "h2"] and status is ActionStatus.COMMITTED
    assert client.cache.expired == 1
    entry = client.cache.lookup(str(UID))
    assert entry is not None and entry.lease_expiry > s.now, \
        "the expired miss must have repopulated under a fresh lease"


def test_own_mutation_invalidates_write_through():
    s, dbs, agents, router, client, agent = make_world()
    one_get_server(s, client)
    assert client.cache.lookup(str(UID)) is not None

    action = AtomicAction(node="client")

    def mutate():
        yield from client.increment(action, "client", UID, ["h1"])
        return (yield from action.commit())

    before = client.cache.lookup(str(UID))
    assert run(s, mutate()) is ActionStatus.COMMITTED
    assert len(client.cache) == 0, \
        "the owner must drop the binding it just changed"

    hosts, status = one_get_server(s, client)
    assert status is ActionStatus.COMMITTED
    entry = client.cache.lookup(str(UID))
    assert entry is not None
    assert entry.versions[0] > before.versions[0], \
        "the repopulated snapshot must carry the committed mutation"


def test_same_action_read_after_write_sees_own_provisional_state():
    s, dbs, agents, router, client, agent = make_world()
    one_get_server(s, client)
    action = AtomicAction(node="client")

    def body():
        yield from client.insert(action, UID, "h3")
        hosts = yield from client.get_server(action, UID)
        status = yield from action.commit()
        return hosts, status

    hosts, status = run(s, body())
    assert status is ActionStatus.COMMITTED
    assert hosts == ["h1", "h2", "h3"], \
        "a read after the action's own write must see that write"


def test_write_racing_a_repopulation_cannot_resurrect_the_stale_binding():
    """Same client, two concurrent actions: a repopulating read is
    suspended on the wire when the client's own write invalidates the
    uid (a no-op on the empty cache).  The read's reply carries the
    pre-write snapshot; storing it under a fresh lease would hand this
    client its own stale binding for a whole TTL.  The invalidation
    token captured before the read suspends must refuse that store."""
    from repro.actions.errors import LockRefused

    s, dbs, agents, router, client, agent = make_world()
    outcomes = {}

    def reader():
        action = AtomicAction(node="client")
        try:
            outcomes["read"] = yield from client.get_server(action, UID)
            yield from action.commit()
        except LockRefused:
            yield from action.abort()
            outcomes["read"] = "refused"  # serialized behind the write

    def writer():
        action = AtomicAction(node="client")
        yield from client.insert(action, UID, "h3")
        outcomes["write"] = yield from action.commit()

    s.spawn(reader(), name="racing-reader")
    s.spawn(writer(), name="racing-writer")
    s.run(until=10.0)
    assert outcomes["write"] is ActionStatus.COMMITTED

    hosts, status = one_get_server(s, client)
    assert status is ActionStatus.COMMITTED
    assert hosts == ["h1", "h2", "h3"], \
        "the pre-write snapshot must not have been cached over the write"


def test_busy_entry_falls_back_to_the_authoritative_read():
    from repro.actions.errors import LockRefused

    s, dbs, agents, router, client, agent = make_world()
    # A live writer holds the entry on the primary: the lock-free read
    # answers "locked" there and the client takes the locking path,
    # which serializes behind the writer exactly as before the cache
    # existed (here: a LockRefused verdict the caller retries on).
    primary = router.preference_list(UID, 2)[0]
    writer = AtomicAction(node="other")
    dbs[primary].insert(writer.id.path, str(UID), "h9")

    action = AtomicAction(node="client")

    def body():
        try:
            yield from client.get_server(action, UID)
        except LockRefused:
            yield from action.abort()
            return "refused"
        yield from action.commit()
        return "served"

    # Only the authoritative locking path can surface LockRefused (the
    # lock-free read answers the "locked" marker instead), so the
    # verdict itself proves the fallback ran.
    assert run(s, body()) == "refused"
    assert client.cache.hits == 0 and len(client.cache) == 0, \
        "a locked entry must not seed a lease"
    dbs[primary].abort(writer.id.path)


def test_validation_vetoes_a_commit_over_a_moved_binding():
    s, dbs, agents, router, client, agent = make_world(validate=True)
    one_get_server(s, client)  # populate the cache

    # The binding moves behind the client's back (another client's
    # committed Increment on every replica).
    other = AtomicAction(node="other")
    for name in router.preference_list(UID, 2):
        dbs[name].increment(other.id.path, "other", str(UID), ["h1"])
        dbs[name].commit(other.id.path)

    action = AtomicAction(node="client")

    def body():
        hosts = yield from client.get_server(action, UID)
        status = yield from action.commit()
        return hosts, status

    hosts, status = run(s, body())
    assert hosts == ["h1", "h2"], "the hit itself serves the cached Sv"
    assert status is ActionStatus.ABORTED, \
        "validate-at-commit must veto the stale lease"
    record = next(r for r in action.records
                  if type(r).__name__ == "LeaseValidationRecord")
    assert record.outcome == "stale"


def test_veto_purges_the_entry_so_the_retry_commits():
    """The optimistic loop must converge: a vetoed lease is dropped
    from the cache, so the re-run misses, refetches the moved binding,
    and validates clean -- not abort forever until the lease expires."""
    s, dbs, agents, router, client, agent = make_world(validate=True)
    one_get_server(s, client)
    other = AtomicAction(node="other")
    for name in router.preference_list(UID, 2):
        dbs[name].increment(other.id.path, "other", str(UID), ["h1"])
        dbs[name].commit(other.id.path)

    _hosts, status = one_get_server(s, client)
    assert status is ActionStatus.ABORTED
    assert len(client.cache) == 0, "the vetoed entry must be purged"

    hosts, status = one_get_server(s, client)  # the retry
    assert hosts == ["h1", "h2"]
    assert status is ActionStatus.COMMITTED, \
        "the retry must refetch and validate clean"


def test_own_write_after_leased_read_does_not_self_veto():
    """A leased read followed by the same action writing that uid must
    commit: the write's provisional version bump is the action's *own*,
    and its real locks + 2PC enlistment own the uid's serialization
    from that point -- the validation record is disarmed, not left to
    read the bump as 'the binding moved' and veto every retry."""
    s, dbs, agents, router, client, agent = make_world(validate=True)
    one_get_server(s, client)  # populate
    action = AtomicAction(node="client")

    def body():
        yield from client.get_server(action, UID)   # leased hit, armed
        yield from client.insert(action, UID, "h3")  # own write, same uid
        return (yield from action.commit())

    assert run(s, body()) is ActionStatus.COMMITTED
    record = next(r for r in action.records
                  if type(r).__name__ == "LeaseValidationRecord")
    assert record.outcome == "superseded"
    assert client._validation_records == {}, \
        "resolved records must release their dedupe entries"


def test_gated_replica_cannot_seed_a_lease():
    """A recovering host is held out of the client serving path while
    its sync side door stays open for resync traffic.  The leased
    repopulation read must ride the *gated* client plane: with the
    primary dark and the only other replica gated, the miss must fail
    over to the authoritative path's error -- never quietly seed a
    lease from the gated host's (potentially pre-crash) state."""
    from repro.net.errors import RpcError

    s, dbs, agents, router, client, agent = make_world(replication=2)
    primary, secondary = router.preference_list(UID, 2)
    agents[primary].unregister(SERVICE_NAME)
    agents[primary].unregister(SYNC_SERVICE_NAME)
    agents[primary]._nic.up = False          # primary crashed
    agents[secondary].unregister(SERVICE_NAME)  # secondary gated mid-resync

    action = AtomicAction(node="client")

    def body():
        try:
            yield from client.get_server(action, UID)
        except RpcError:
            yield from action.abort()
            return "unavailable"
        yield from action.commit()
        return "served"

    assert run(s, body()) == "unavailable", \
        "only gated/dark replicas remain: the read must fail, not serve"
    assert len(client.cache) == 0, \
        "nothing may seed a lease from a gated replica"


def test_validation_passes_while_the_binding_is_unchanged():
    s, dbs, agents, router, client, agent = make_world(validate=True)
    one_get_server(s, client)
    hosts, status = one_get_server(s, client)
    assert hosts == ["h1", "h2"]
    assert status is ActionStatus.COMMITTED, \
        "an unchanged binding must validate clean"


def test_leased_miss_reports_stale_missing_replicas_for_repair():
    """The lock-free repopulation walk must feed read-repair exactly
    like the authoritative read: stepping past a replica disclaiming
    an entry its peer serves is stale-missing evidence."""
    from repro.naming import ReadRepairer

    s, dbs, agents, router, client, agent = make_world(replication=3)
    repairer = ReadRepairer(s, agent, router, 3, min_interval=0.0)
    client.io.repair = repairer
    head = router.preference_list(UID, 3)[0]
    parsed = type(UID).parse(str(UID))
    del dbs[head].server_db._entries[parsed]  # stale-missing replica
    del dbs[head].state_db._entries[parsed]

    hosts, status = one_get_server(s, client)  # miss -> versioned walk
    assert hosts == ["h1", "h2"]
    assert repairer.repairs_triggered == 1, \
        "the stepped-past disclaiming replica must be reported"
    s.run(until=s.now + 5.0)
    assert dbs[head].knows(str(UID)), \
        "the triggered repair must re-seed the stale replica"


def test_ledger_records_every_hit_within_bounds():
    s, dbs, agents, router, client, agent = make_world()
    one_get_server(s, client)
    for _ in range(4):
        one_get_server(s, client)
    assert len(client.cache.ledger) == 4
    assert client.cache.ledger_violations() == []
    for record in client.cache.ledger:
        assert record.age <= LEASE
        assert record.ring_epoch == record.live_epoch


def test_ledger_record_violation_logic():
    fresh = LedgerRecord(uid="u", fetched_at=0.0, served_at=1.0,
                         ring_epoch=3, live_epoch=3, lease=5.0)
    assert not fresh.violates_bounds()
    overdue = LedgerRecord(uid="u", fetched_at=0.0, served_at=5.1,
                           ring_epoch=3, live_epoch=3, lease=5.0)
    assert overdue.violates_bounds()
    fenced = LedgerRecord(uid="u", fetched_at=0.0, served_at=1.0,
                          ring_epoch=3, live_epoch=4, lease=5.0)
    assert fenced.violates_bounds()


def test_lru_capacity_evicts_the_coldest_entry():
    s, dbs, agents, router, client, agent = make_world(capacity=2)
    cache = client.cache
    cache.store("u1", ["h"], ["t"], (1, 1))
    cache.store("u2", ["h"], ["t"], (1, 1))
    assert cache.lookup("u1") is not None  # warms u1 above u2
    cache.store("u3", ["h"], ["t"], (1, 1))
    assert len(cache) == 2
    assert cache.lookup("u2") is None, "the coldest entry must go first"
    assert cache.lookup("u1") is not None
    assert cache.lookup("u3") is not None


def test_cache_rejects_bad_parameters():
    with pytest.raises(ValueError):
        EntryCache(0.0, fence=lambda: 0, clock=lambda: 0.0)
    with pytest.raises(ValueError):
        EntryCache(1.0, fence=lambda: 0, clock=lambda: 0.0, capacity=0)


def test_lease_skew_anchors_at_receive_and_stretches_staleness():
    """The injected anchor flip: a skewed client re-stamps its leases
    at reply-receive time, so a slow reply quietly extends the declared
    staleness bound by the round trip -- visible in ``skewed_stores``
    and in the entry's later-than-honest expiry."""
    s, dbs, agents, router, client, agent = make_world()
    cache = client.cache
    one_get_server(s, client)  # honest send-anchored populate
    honest = cache.peek(str(UID))
    assert cache.skewed_stores == 0

    cache.invalidate(str(UID))
    cache.anchor = "receive"  # the FaultPlan skew event's effect
    before = s.now
    one_get_server(s, client)
    skewed = cache.peek(str(UID))
    assert cache.skewed_stores == 1
    # Send-anchored leases start at the probe-send clock; the skewed
    # store stamped at receive time, after the RPC round trip.
    assert skewed.fetched_at > before
    assert skewed.lease_expiry - skewed.fetched_at == pytest.approx(LEASE)

    cache.anchor = "send"  # unskew restores the honest discipline
    cache.invalidate(str(UID))
    one_get_server(s, client)
    assert cache.skewed_stores == 1
    assert honest is not None
