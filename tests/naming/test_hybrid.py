"""Tests for the section-5 hybrid name service."""

import pytest

from repro.actions import AtomicAction, LockRefused
from repro.naming.hybrid import HybridNameService
from repro.storage import Uid

UID_TEXT = "sys:1"


def make_service():
    service = HybridNameService()
    service.define_object((0,), UID_TEXT, ["h1", "h2"], ["t1", "t2"])
    service.commit((0,))
    return service


def test_server_side_is_nonatomic():
    service = make_service()
    service.insert((5,), UID_TEXT, "h3")
    service.abort((5,))  # nothing rolled back on the server side
    assert "h3" in service.get_server((6,), UID_TEXT)


def test_state_side_is_atomic():
    service = make_service()
    action = AtomicAction()
    service.exclude(action.id.path, [(UID_TEXT, ["t2"])])
    service.abort(action.id.path)  # St exclusion rolled back
    probe = AtomicAction()
    assert service.get_view(probe.id.path, UID_TEXT) == ["t1", "t2"]


def test_state_side_locks_enforced():
    service = make_service()
    reader = AtomicAction()
    service.get_view(reader.id.path, UID_TEXT)
    includer = AtomicAction()
    with pytest.raises(LockRefused):
        service.include(includer.id.path, UID_TEXT, "t9")


def test_server_side_never_locks():
    service = make_service()
    service.get_server((1,), UID_TEXT)
    service.insert((2,), UID_TEXT, "h9")   # would be refused if locked
    service.remove((3,), UID_TEXT, "h9")


def test_prepare_reflects_only_state_side():
    service = make_service()
    action = AtomicAction()
    service.insert(action.id.path, UID_TEXT, "h3")  # non-atomic: invisible
    assert service.prepare(action.id.path) == "readonly"
    service.exclude(action.id.path, [(UID_TEXT, ["t2"])])
    assert service.prepare(action.id.path) == "ok"
    service.commit(action.id.path)


def test_use_lists_work_without_atomicity():
    service = make_service()
    service.increment((1,), "cn", UID_TEXT, ["h1"])
    assert not service.is_quiescent(UID_TEXT)
    service.decrement((2,), "cn", UID_TEXT, ["h1"])
    assert service.is_quiescent(UID_TEXT)


def test_knows_and_ping():
    service = make_service()
    assert service.knows(UID_TEXT)
    assert not service.knows("sys:404")
    assert service.ping() == "pong"
