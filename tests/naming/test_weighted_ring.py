"""Unit tests for the weighted virtual-node + fixed-partition ring.

Three ring properties the naming layer leans on, checked directly:
determinism (weights included), balance (partition shares track
weights across partition powers), and stability (a weight change moves
no more partitions than :meth:`ShardRouter.movement_bound` predicts).
"""

import pytest

from repro.naming import shard_router as shard_router_module
from repro.naming.shard_router import ShardRouter

HOSTS = [f"host{i}" for i in range(8)]


def test_weighted_rings_are_deterministic():
    weights = {"host0": 2.0, "host3": 0.5}
    a = ShardRouter(HOSTS, weights=weights)
    b = ShardRouter(HOSTS, weights=dict(weights))
    assert a._ring == b._ring
    for partition in range(a.partition_count):
        assert (a.partition_preference(partition, 3)
                == b.partition_preference(partition, 3))


def test_routing_resolves_key_to_partition_to_owner():
    router = ShardRouter(HOSTS[:4])
    for key in (f"sys:{i}" for i in range(200)):
        partition = router.partition_of(key)
        assert 0 <= partition < router.partition_count
        assert router.shard_for(key) == router.partition_owner(partition)
        plist = router.preference_list(key, 3)
        assert plist == router.partition_preference(partition, 3)
        assert plist[0] == router.shard_for(key)
        assert len(set(plist)) == len(plist) == 3


def test_vnode_count_scales_with_weight():
    router = ShardRouter(["a", "b"], replicas=32,
                         weights={"a": 2.0, "b": 1.0})
    points = {"a": 0, "b": 0}
    for _point, owner in router._ring:
        points[owner] += 1
    assert points == {"a": 64, "b": 32}


def test_minimum_one_vnode_however_small_the_weight():
    router = ShardRouter(["a", "b"], replicas=8,
                         weights={"a": 1e-9, "b": 1.0})
    assert any(owner == "a" for _point, owner in router._ring)


@pytest.mark.parametrize("power", [6, 8, 10])
def test_equal_weights_balance_partitions(power):
    router = ShardRouter(HOSTS, partition_power=power, replicas=64)
    spread = router.partition_spread()
    assert sum(spread.values()) == router.partition_count
    mean = router.partition_count / len(HOSTS)
    # 64 vnodes/host keeps the max within ~2x of the mean at every
    # power -- coarse, but catches any systematic skew regression.
    assert max(spread.values()) <= 2.0 * mean
    assert min(spread.values()) > 0


def test_heavier_hosts_own_proportionally_more_partitions():
    router = ShardRouter(["small", "big"], partition_power=10, replicas=128,
                         weights={"small": 1.0, "big": 3.0})
    spread = router.partition_spread()
    share = spread["big"] / router.partition_count
    assert 0.6 <= share <= 0.9  # ~0.75 expected at weight ratio 3:1


def test_weight_change_moves_bounded_partitions():
    router = ShardRouter(HOSTS, partition_power=10, replicas=64)
    target = router.clone()
    target.set_weight("host2", 1.25)
    moved = router.moved_partitions(target, 2)
    bound = router.movement_bound(target, 2)
    assert len(moved) <= bound
    # A 25% weight bump on one of eight hosts must not reshuffle the
    # ring wholesale.
    assert bound < router.partition_count
    assert len(moved) < router.partition_count // 2


def test_moved_partitions_is_the_exact_preference_diff():
    router = ShardRouter(HOSTS[:4], partition_power=8)
    target = router.clone()
    target.add_node("host9")
    moved = router.moved_partitions(target, 2)
    for partition in range(router.partition_count):
        changed = (router.partition_preference(partition, 2)
                   != target.partition_preference(partition, 2))
        assert (partition in moved) == changed
    assert len(moved) <= router.movement_bound(target, 2)


def test_unchanged_rings_move_nothing():
    router = ShardRouter(HOSTS[:4])
    target = router.clone()
    assert router.moved_partitions(target, 3) == set()
    assert router.movement_bound(target, 3) == 0


def test_partition_power_mismatch_rejected():
    a = ShardRouter(["x", "y"], partition_power=8)
    b = ShardRouter(["x", "y"], partition_power=9)
    with pytest.raises(ValueError):
        a.moved_partitions(b, 2)
    with pytest.raises(ValueError):
        a.movement_bound(b, 2)
    with pytest.raises(ValueError):
        ShardRouter(["x"], partition_power=0)
    with pytest.raises(ValueError):
        ShardRouter(["x"], partition_power=17)


def test_set_weight_flushes_memo_and_bumps_fence():
    router = ShardRouter(HOSTS[:4], partition_power=6)
    before = router.preference_list("sys:1", 2)
    assert router._plist_cache  # the walk memoized
    fence = router.fence_epoch
    epoch = router.epoch
    router.set_weight("host1", 4.0)
    assert router._plist_cache == {}
    assert router.fence_epoch > fence
    assert router.epoch > epoch
    after = router.preference_list("sys:1", 2)
    assert len(set(after)) == 2  # still a valid distinct-host walk
    assert before == ShardRouter(HOSTS[:4], partition_power=6
                                 ).preference_list("sys:1", 2)


def test_tiny_weight_change_without_vnode_delta_still_fences():
    router = ShardRouter(HOSTS[:4], replicas=4)
    fence = router.fence_epoch
    # 4 vnodes at weight 1.0 and at 1.05 round to the same count, but
    # observers still get the one rule: weight changed => epoch moved.
    router.set_weight("host0", 1.05)
    assert router.fence_epoch > fence
    assert router.weight_of("host0") == 1.05
    fence = router.fence_epoch
    router.set_weight("host0", 1.05)  # true no-op: same value
    assert router.fence_epoch == fence


def test_invalid_weights_rejected():
    router = ShardRouter(["a", "b"])
    with pytest.raises(ValueError):
        router.set_weight("a", 0.0)
    with pytest.raises(ValueError):
        router.set_weight("ghost", 1.0)
    with pytest.raises(ValueError):
        router.add_node("c", weight=-1.0)
    with pytest.raises(ValueError):
        ShardRouter(["a"], weights={"a": 0.0})


def test_clone_carries_weights_and_partition_power():
    router = ShardRouter(HOSTS[:3], partition_power=9,
                         weights={"host1": 2.0})
    dup = router.clone()
    assert dup.partition_power == 9
    assert dup.weights == router.weights
    assert dup._ring == router._ring
    dup.set_weight("host1", 1.0)
    assert router.weight_of("host1") == 2.0  # no shared state


def test_remove_node_drops_its_weight():
    router = ShardRouter(["a", "b"], weights={"b": 2.0})
    router.remove_node("b")
    assert "b" not in router.weights
    with pytest.raises(ValueError):
        router.weight_of("b")


def test_ring_hash_memo_is_bounded():
    assert shard_router_module._ring_hash.cache_info().maxsize is not None


def test_partition_spread_includes_zero_owners():
    # One dominant host at a tiny partition power can starve another;
    # the histogram must still list every host.
    router = ShardRouter(["a", "b", "c"], partition_power=1, replicas=64)
    spread = router.partition_spread()
    assert set(spread) == {"a", "b", "c"}
    assert sum(spread.values()) == 2


def test_preference_list_size_validation():
    router = ShardRouter(["a", "b"])
    with pytest.raises(ValueError):
        router.preference_list("k", 0)
    with pytest.raises(ValueError):
        router.partition_preference(-1, 1)
    with pytest.raises(ValueError):
        router.partition_owner(router.partition_count)
