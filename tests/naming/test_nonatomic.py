"""Tests for the traditional non-atomic name server (section 5)."""

import pytest

from repro.naming import NonAtomicNameServer, UnknownObject


def make_server():
    server = NonAtomicNameServer()
    server.define_object((0,), "sys:1", ["h1", "h2"], ["t1"])
    return server


def test_basic_operations_apply_immediately():
    server = make_server()
    assert server.get_server((1,), "sys:1") == ["h1", "h2"]
    server.insert((1,), "sys:1", "h3")
    assert server.get_server((2,), "sys:1") == ["h1", "h2", "h3"]
    server.remove((3,), "sys:1", "h1")
    assert server.get_server((4,), "sys:1") == ["h2", "h3"]


def test_no_locks_no_conflicts():
    """Concurrent 'actions' interleave freely -- the whole point."""
    server = make_server()
    server.get_server((1,), "sys:1")
    server.insert((2,), "sys:1", "h3")      # no LockRefused ever
    server.remove((1,), "sys:1", "h3")


def test_abort_rolls_nothing_back():
    server = make_server()
    server.insert((5,), "sys:1", "h3")
    server.abort((5,))
    assert "h3" in server.get_server((6,), "sys:1")


def test_prepare_always_readonly():
    server = make_server()
    server.insert((5,), "sys:1", "h3")
    assert server.prepare((5,)) == "readonly"
    server.commit((5,))  # no-op


def test_use_lists_without_atomicity():
    server = make_server()
    server.increment((1,), "cn", "sys:1", ["h1"])
    snapshot = server.get_server_with_uses((2,), "sys:1")
    assert snapshot.uses["h1"] == {"cn": 1}
    server.decrement((3,), "cn", "sys:1", ["h1"])
    assert server.is_quiescent("sys:1")


def test_unknown_object():
    with pytest.raises(UnknownObject):
        make_server().get_server((1,), "sys:99")


def test_ping():
    assert make_server().ping() == "pong"
