"""Tests for the Object Server database (paper section 4.1)."""

import pytest

from repro.actions import ActionId, AtomicAction, LockRefused, PromotionRefused
from repro.naming import NotQuiescent, ObjectServerDatabase, UnknownObject
from repro.storage import Uid

UID = Uid("sys", 1)


def make_db(hosts=("alpha", "beta")):
    db = ObjectServerDatabase()
    boot = AtomicAction()
    db.define(boot.id.path, UID, list(hosts))
    db.commit(boot.id.path)
    return db


def test_get_server_returns_hosts_copy():
    db = make_db()
    action = AtomicAction()
    hosts = db.get_server(action.id.path, UID)
    assert hosts == ["alpha", "beta"]
    hosts.append("evil")
    assert db.get_server(action.id.path, UID) == ["alpha", "beta"]


def test_get_server_unknown_object():
    db = make_db()
    with pytest.raises(UnknownObject):
        db.get_server(AtomicAction().id.path, Uid("sys", 99))


def test_get_server_takes_read_lock_shared():
    db = make_db()
    a1, a2 = AtomicAction(), AtomicAction()
    db.get_server(a1.id.path, UID)
    db.get_server(a2.id.path, UID)  # no conflict


def test_insert_needs_write_lock():
    db = make_db()
    reader = AtomicAction()
    db.get_server(reader.id.path, UID)
    writer = AtomicAction()
    with pytest.raises(LockRefused):
        db.insert(writer.id.path, UID, "gamma")


def test_insert_and_undo_on_abort():
    db = make_db()
    action = AtomicAction()
    db.insert(action.id.path, UID, "gamma")
    assert db.get_server(action.id.path, UID) == ["alpha", "beta", "gamma"]
    db.abort(action.id.path)
    check = AtomicAction()
    assert db.get_server(check.id.path, UID) == ["alpha", "beta"]


def test_insert_existing_host_idempotent():
    db = make_db()
    action = AtomicAction()
    db.insert(action.id.path, UID, "alpha")
    assert db.get_server(action.id.path, UID) == ["alpha", "beta"]
    db.commit(action.id.path)


def test_insert_refused_when_use_lists_nonempty():
    """Paper 4.1.2: Insert succeeds only when the object is quiescent."""
    db = make_db()
    binder = AtomicAction()
    db.increment(binder.id.path, "client-n", UID, ["alpha"])
    db.commit(binder.id.path)
    recoverer = AtomicAction()
    with pytest.raises(NotQuiescent):
        db.insert(recoverer.id.path, UID, "alpha")


def test_remove_and_undo_restores_position_and_uses():
    db = make_db(("alpha", "beta", "gamma"))
    setup = AtomicAction()
    db.increment(setup.id.path, "cn", UID, ["beta"])
    db.commit(setup.id.path)
    action = AtomicAction()
    db.remove(action.id.path, UID, "beta")
    assert db.get_server(action.id.path, UID) == ["alpha", "gamma"]
    db.abort(action.id.path)
    check = AtomicAction()
    snapshot = db.get_server_with_uses(check.id.path, UID)
    assert snapshot.hosts == ("alpha", "beta", "gamma")
    assert snapshot.uses["beta"] == {"cn": 1}


def test_remove_missing_host_is_noop():
    db = make_db()
    action = AtomicAction()
    db.remove(action.id.path, UID, "ghost")
    db.commit(action.id.path)


def test_increment_decrement_counters():
    db = make_db()
    a = AtomicAction()
    db.increment(a.id.path, "cn", UID, ["alpha", "beta"])
    db.increment(a.id.path, "cn", UID, ["alpha"])
    db.commit(a.id.path)
    b = AtomicAction()
    snapshot = db.get_server_with_uses(b.id.path, UID)
    assert snapshot.uses["alpha"] == {"cn": 2}
    assert snapshot.uses["beta"] == {"cn": 1}
    db.decrement(b.id.path, "cn", UID, ["alpha", "beta"])
    db.commit(b.id.path)
    c = AtomicAction()
    snapshot = db.get_server_with_uses(c.id.path, UID)
    assert snapshot.uses["alpha"] == {"cn": 1}
    assert snapshot.uses["beta"] == {}


def test_increment_unknown_host_raises():
    db = make_db()
    action = AtomicAction()
    with pytest.raises(UnknownObject):
        db.increment(action.id.path, "cn", UID, ["ghost"])


def test_increment_undone_on_abort():
    db = make_db()
    action = AtomicAction()
    db.increment(action.id.path, "cn", UID, ["alpha"])
    db.abort(action.id.path)
    check = AtomicAction()
    assert db.get_server_with_uses(check.id.path, UID).all_uses_empty


def test_decrement_below_zero_tolerated():
    db = make_db()
    action = AtomicAction()
    db.decrement(action.id.path, "cn", UID, ["alpha"])
    db.commit(action.id.path)  # no crash; cleanup may race decrements


def test_quiescence_definition():
    db = make_db()
    assert db.is_quiescent(UID)
    reader = AtomicAction()
    db.get_server(reader.id.path, UID)
    assert not db.is_quiescent(UID)  # lock held
    db.commit(reader.id.path)
    assert db.is_quiescent(UID)
    user = AtomicAction()
    db.increment(user.id.path, "cn", UID, ["alpha"])
    db.commit(user.id.path)
    assert not db.is_quiescent(UID)  # use list non-empty


def test_purge_client_removes_all_counters():
    db = make_db()
    setup = AtomicAction()
    db.increment(setup.id.path, "dead-client", UID, ["alpha", "beta"])
    db.increment(setup.id.path, "live-client", UID, ["alpha"])
    db.commit(setup.id.path)
    cleaner = AtomicAction()
    purged = db.purge_client(cleaner.id.path, "dead-client")
    db.commit(cleaner.id.path)
    assert purged == [UID]
    check = AtomicAction()
    snapshot = db.get_server_with_uses(check.id.path, UID)
    assert snapshot.uses["alpha"] == {"live-client": 1}
    assert snapshot.uses["beta"] == {}


def test_purge_client_undo_on_abort():
    db = make_db()
    setup = AtomicAction()
    db.increment(setup.id.path, "cn", UID, ["alpha"])
    db.commit(setup.id.path)
    cleaner = AtomicAction()
    db.purge_client(cleaner.id.path, "cn")
    db.abort(cleaner.id.path)
    check = AtomicAction()
    assert db.get_server_with_uses(check.id.path, UID).uses["alpha"] == {"cn": 1}


def test_purge_client_skips_locked_entries():
    db = make_db()
    setup = AtomicAction()
    db.increment(setup.id.path, "cn", UID, ["alpha"])
    db.commit(setup.id.path)
    holder = AtomicAction()
    db.get_server(holder.id.path, UID)  # read lock blocks purge's write lock
    cleaner = AtomicAction()
    assert db.purge_client(cleaner.id.path, "cn") == []


def test_nested_action_lock_inherited_until_top_commit():
    """Figure 6: GetServer in a nested action; lock lives to top end."""
    db = make_db()
    top = AtomicAction()
    nested = AtomicAction(parent=top)
    db.get_server(nested.id.path, UID)
    # Nested 'commits' (merge) -- db keeps the lock under the child id,
    # which blocks writers because it is still an uncommitted lineage.
    writer = AtomicAction()
    with pytest.raises(LockRefused):
        db.insert(writer.id.path, UID, "gamma")
    db.commit(top.id.path)  # top-level commit releases the whole tree
    writer2 = AtomicAction()
    db.insert(writer2.id.path, UID, "gamma")


def test_prepare_votes():
    db = make_db()
    reader = AtomicAction()
    db.get_server(reader.id.path, UID)
    assert db.prepare(reader.id.path) == "readonly"
    writer = AtomicAction()
    db.commit(reader.id.path)
    db.insert(writer.id.path, UID, "gamma")
    assert db.prepare(writer.id.path) == "ok"


def test_snapshot_helpers():
    db = make_db()
    setup = AtomicAction()
    db.increment(setup.id.path, "cn", UID, ["beta"])
    db.commit(setup.id.path)
    check = AtomicAction()
    snapshot = db.get_server_with_uses(check.id.path, UID)
    assert not snapshot.all_uses_empty
    assert snapshot.used_hosts() == ["beta"]
    assert snapshot.total_users("beta") == 1
    assert snapshot.total_users("alpha") == 0


def test_purge_client_abort_restores_every_entry():
    """Regression: the purge undo closures must bind each entry's UID
    at record time — aborting a purge spanning several entries has to
    restore each counter onto its own entry, not pile them all onto
    the last entry iterated."""
    db = ObjectServerDatabase()
    boot = AtomicAction()
    uid_a, uid_b = Uid("sys", 10), Uid("sys", 20)
    db.define(boot.id.path, uid_a, ["h1"])
    db.define(boot.id.path, uid_b, ["h1"])
    db.commit(boot.id.path)
    setup = AtomicAction()
    db.increment(setup.id.path, "ghost", uid_a, ["h1"])
    db.increment(setup.id.path, "ghost", uid_b, ["h1"])
    db.commit(setup.id.path)

    cleaner = AtomicAction()
    assert db.purge_client(cleaner.id.path, "ghost") == [uid_a, uid_b]
    db.abort(cleaner.id.path)

    for uid in (uid_a, uid_b):
        probe = AtomicAction()
        snapshot = db.get_server_with_uses(probe.id.path, uid)
        db.abort(probe.id.path)
        assert snapshot.uses["h1"] == {"ghost": 1}, (uid, snapshot.uses)
