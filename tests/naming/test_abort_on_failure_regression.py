"""Regression: non-``Exception`` failures during bind/cleanup leak nothing.

The historical bug (normalized repo-wide by the ``action-leak`` rule):
binding schemes and the cleanup daemon guarded their private top-level
actions with ``except Exception``, so a BaseException-class failure --
a killed client process above all -- skipped the abort and left the
action's write locks held on the naming database forever.  These tests
inject exactly such a failure and assert the action terminates and the
lock tables come back empty.
"""

import pytest

from repro.actions import AtomicAction
from repro.naming import GroupViewDatabase
from repro.naming.binding import IndependentTopLevelBinding
from repro.naming.db_client import GroupViewDbClient
from repro.net import FixedLatency, MessageDemux, Network, RpcAgent
from repro.sim import MetricsRegistry, Scheduler
from repro.storage import Uid

UID = Uid("sys", 1)


class Killed(BaseException):
    """Stands in for a process kill: deliberately NOT an Exception."""


class World:
    def __init__(self):
        self.scheduler = Scheduler()
        self.network = Network(self.scheduler, FixedLatency(0.01))
        nic_db = self.network.attach("db")
        self.db_agent = RpcAgent(self.scheduler, nic_db,
                                 demux=MessageDemux(nic_db))
        self.db = GroupViewDatabase()
        self.db_agent.register("group_view_db", self.db)
        boot = AtomicAction()
        self.db.define_object(boot.id.path, str(UID), ["h1", "h2"], ["t1"])
        self.db.commit(boot.id.path)

        nic_client = self.network.attach("client")
        client_agent = RpcAgent(self.scheduler, nic_client,
                                demux=MessageDemux(nic_client))
        self.db_client = GroupViewDbClient(client_agent, "db")
        self.scheme = IndependentTopLevelBinding(
            self.db_client, "client", metrics=MetricsRegistry())

    def run(self, body):
        return self.scheduler.run_until_settled(
            self.scheduler.spawn(body), until=100.0)

    def assert_no_leaked_locks(self):
        assert self.db.server_db.locks.owners() == set()
        assert self.db.state_db.locks.owners() == set()


def test_killed_binder_releases_all_database_locks():
    # The figure-7 scheme's first action holds a WRITE lock on the
    # entry (for_update=True) when the binder raises the kill.
    world = World()

    def killing_binder(host, uid, action):
        raise Killed("client process killed mid-bind")
        yield

    def body():
        action = AtomicAction(node="client")
        yield from world.scheme.bind(action, UID, killing_binder)

    with pytest.raises(Killed):
        world.run(body())
    world.assert_no_leaked_locks()


def test_killed_unbind_releases_all_database_locks():
    world = World()

    def ok_binder(host, uid, action):
        return True
        yield

    def bind_body():
        action = AtomicAction(node="client")
        outcome = yield from world.scheme.bind(action, UID, ok_binder)
        yield from action.commit()
        return outcome

    outcome = world.run(bind_body())
    world.assert_no_leaked_locks()

    # Sabotage the decrement so the unbind-side action fails with a
    # non-Exception after it has taken its write lock.
    original = world.db_client.decrement

    def killing_decrement(action, client_node, uid, hosts):
        yield from world.db_client.get_server_with_uses(action, uid,
                                                        for_update=True)
        raise Killed("client process killed mid-unbind")

    world.db_client.decrement = killing_decrement
    try:
        def unbind_body():
            yield from world.scheme.unbind(UID, outcome)

        with pytest.raises(Killed):
            world.run(unbind_body())
    finally:
        world.db_client.decrement = original
    world.assert_no_leaked_locks()
