"""Tests for sweep helpers and tables."""

import math

import pytest

from repro.workload import Table, mean_and_spread, sweep
from repro.workload.sweep import sharded_failover_scenario


def test_sharded_failover_scenario_row_shape():
    """A tiny run of the failover scenario produces a complete row."""
    row = sharded_failover_scenario(shards=3, replication=2, clients=4,
                                    txns_per_client=3, server_hosts=2,
                                    outage=(1.0, 4.0))
    assert row["replication"] == 2
    assert row["victim"] == "namenode0"
    assert row["offered"] == 12
    assert 0.0 <= row["commit_rate"] <= 1.0
    assert row["resyncs_completed"] == 1
    assert row["resync_done_at"] > row["recovered_at"]
    assert row["serving_again"]


def test_sweep_collects_tagged_rows():
    rows = sweep([1, 2, 3], lambda v: {"square": v * v}, label="n")
    assert rows == [{"n": 1, "square": 1}, {"n": 2, "square": 4},
                    {"n": 3, "square": 9}]


def test_mean_and_spread():
    mean, spread = mean_and_spread([2.0, 4.0, 6.0])
    assert mean == 4.0
    assert spread == pytest.approx(2.0)


def test_mean_and_spread_degenerate():
    mean, spread = mean_and_spread([5.0])
    assert (mean, spread) == (5.0, 0.0)
    mean, _ = mean_and_spread([])
    assert math.isnan(mean)


def test_table_renders_aligned():
    table = Table("Demo", ["name", "value"])
    table.add_row("short", 1.5)
    table.add_row("much-longer-name", 22)
    text = table.render()
    assert "Demo" in text
    assert "1.500" in text
    assert "much-longer-name" in text
    lines = text.splitlines()
    header_line = next(l for l in lines if l.startswith("name"))
    assert "value" in header_line


def test_table_rejects_wrong_arity():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)
