"""Tests for sweep helpers and tables."""

import math

import pytest

from repro.workload import Table, mean_and_spread, sweep
from repro.workload.sweep import (
    online_reshard_scenario,
    percentile,
    sharded_failover_scenario,
    spread_read_scenario,
)


def test_online_reshard_scenario_row_shape():
    """A tiny scale-out run produces a complete, all-clean row."""
    row = online_reshard_scenario(initial_shards=2, target_shards=3,
                                  clients=6, txns_per_client=12,
                                  server_hosts=2, reshard_at=1.0)
    assert row["shards_before"] == 2
    assert row["shards_after"] == 3
    assert row["epochs"] == 1
    assert row["commit_rate"] == 1.0
    assert row["lost_bindings"] == 0
    assert row["stale_bindings"] == 0
    assert row["aborted_for_routing"] == 0
    assert row["misplaced_entries"] == 0
    assert row["replica_disagreements"] == 0
    assert row["migration_done_at"] > row["migration_started_at"]


def test_spread_read_scenario_row_shape():
    row = spread_read_scenario(read_policy="spread", clients=6,
                               txns_per_client=4)
    assert row["read_policy"] == "spread"
    assert row["commit_rate"] == 1.0
    assert row["p95_latency"] >= row["p50_latency"] >= 0.0
    assert sum(row["per_shard_reads"].values()) > 0


def test_percentile_nearest_rank():
    values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
    assert percentile(values, 0.50) == 0.5
    assert percentile(values, 0.95) == 1.0
    assert percentile(values, 0.0) == 0.1
    assert math.isnan(percentile([], 0.5))


def test_sharded_failover_scenario_row_shape():
    """A tiny run of the failover scenario produces a complete row."""
    row = sharded_failover_scenario(shards=3, replication=2, clients=4,
                                    txns_per_client=3, server_hosts=2,
                                    outage=(1.0, 4.0))
    assert row["replication"] == 2
    assert row["victim"] == "namenode0"
    assert row["offered"] == 12
    assert 0.0 <= row["commit_rate"] <= 1.0
    assert row["resyncs_completed"] == 1
    assert row["resync_done_at"] > row["recovered_at"]
    assert row["serving_again"]


def test_sweep_collects_tagged_rows():
    rows = sweep([1, 2, 3], lambda v: {"square": v * v}, label="n")
    assert rows == [{"n": 1, "square": 1}, {"n": 2, "square": 4},
                    {"n": 3, "square": 9}]


def test_mean_and_spread():
    mean, spread = mean_and_spread([2.0, 4.0, 6.0])
    assert mean == 4.0
    assert spread == pytest.approx(2.0)


def test_mean_and_spread_degenerate():
    mean, spread = mean_and_spread([5.0])
    assert (mean, spread) == (5.0, 0.0)
    mean, _ = mean_and_spread([])
    assert math.isnan(mean)


def test_table_renders_aligned():
    table = Table("Demo", ["name", "value"])
    table.add_row("short", 1.5)
    table.add_row("much-longer-name", 22)
    text = table.render()
    assert "Demo" in text
    assert "1.500" in text
    assert "much-longer-name" in text
    lines = text.splitlines()
    header_line = next(l for l in lines if l.startswith("name"))
    assert "value" in header_line


def test_table_rejects_wrong_arity():
    table = Table("T", ["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)
