"""Tests for transaction streams and workload reports."""

from repro.sim.rng import SeededRng
from repro.workload import TransactionStream, WorkloadReport, run_streams
from repro.workload.generator import StreamOutcome

from tests.conftest import add_work, build_system


def factory_for(uid, amount=1):
    def factory(_index):
        return add_work(uid, amount)
    return factory


def test_stream_runs_all_transactions():
    system, client, uid = build_system(value=0)
    stream = TransactionStream(client, factory_for(uid), count=5,
                               rng=SeededRng(1), mean_think_time=0.1)
    report = run_streams(system, [stream])
    assert report.offered == 5
    assert report.committed == 5
    assert report.commit_rate == 1.0
    assert report.retries == 0


def test_retries_counted():
    system, client, uid = build_system(value=0)
    # Crash the only binding path for a while so first attempts fail.
    for host in ("s1", "s2", "s3"):
        system.nodes[host].crash()
    system.scheduler.schedule(3.0, system.nodes["s1"].recover)
    # Tiny think time: the first attempts are guaranteed to land before
    # the recovery at t=3 and fail, forcing retries.
    stream = TransactionStream(client, factory_for(uid), count=1,
                               rng=SeededRng(2), mean_think_time=0.01,
                               max_attempts=50)
    report = run_streams(system, [stream], timeout=300.0)
    assert report.committed == 1
    assert report.retries > 0
    assert report.total_attempts == 1 + report.retries


def test_exhausted_attempts_reported_aborted():
    system, client, uid = build_system(value=0)
    for host in ("s1", "s2", "s3"):
        system.nodes[host].crash()
    stream = TransactionStream(client, factory_for(uid), count=2,
                               rng=SeededRng(3), mean_think_time=0.05,
                               max_attempts=2)
    report = run_streams(system, [stream], timeout=300.0)
    assert report.committed == 0
    assert report.aborted == 2
    assert "bind_failed" in report.abort_reasons()


def test_merged_reports():
    a = WorkloadReport([StreamOutcome(True, 1, None, 0.5)])
    b = WorkloadReport([StreamOutcome(False, 2, "x:oops", 1.0)])
    merged = a.merge(b)
    assert merged.offered == 2
    assert merged.committed == 1
    assert merged.abort_reasons() == {"x": 1}
    assert merged.mean_latency() == 0.75


def test_empty_report_safe():
    report = WorkloadReport()
    assert report.commit_rate == 0.0
    assert report.mean_latency() == 0.0
    assert report.abort_reasons() == {}


def test_parallel_streams_merge():
    system, client, uid = build_system(value=0)
    client2 = system.add_client("c2")
    streams = [
        TransactionStream(client, factory_for(uid), count=3,
                          rng=SeededRng(4, "a"), mean_think_time=0.3,
                          max_attempts=5),
        TransactionStream(client2, factory_for(uid), count=3,
                          rng=SeededRng(4, "b"), mean_think_time=0.3,
                          max_attempts=5),
    ]
    report = run_streams(system, streams, timeout=600.0)
    assert report.offered == 6
    assert report.committed == 6


def test_one_absolute_deadline_for_all_streams():
    """Regression for the deadline drift: ``timeout`` is one shared
    absolute budget fixed before the first stream is awaited, not a
    fresh allowance granted per stream as each predecessor settles."""
    import pytest

    system, client, uid = build_system(value=0)
    ghost_uid = system.new_uid()  # never defined: binding always fails
    slow = TransactionStream(client, factory_for(uid), count=3,
                             rng=SeededRng(4), mean_think_time=1.0)
    stuck = TransactionStream(client, factory_for(ghost_uid), count=1,
                              rng=SeededRng(5), mean_think_time=0.3,
                              max_attempts=10**9)
    with pytest.raises(RuntimeError):
        run_streams(system, [slow, stuck], timeout=6.0)
    # The drifting version granted the stuck stream "slow's settle time
    # + another full timeout" (~10s here); the shared deadline cuts it
    # off at ~6s of virtual time.
    assert system.scheduler.now < 9.0
    assert slow.report.committed == 3
