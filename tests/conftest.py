"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import (
    DistributedSystem,
    LockMode,
    PersistentObject,
    SingleCopyPassive,
    SystemConfig,
    operation,
)


class Counter(PersistentObject):
    """The canonical test object: one int, a read op and a write op."""

    TYPE_NAME = "tests.Counter"

    def __init__(self, uid, value: int = 0):
        super().__init__(uid)
        self.value = value

    def save_state(self, out):
        out.pack_int(self.value)

    def restore_state(self, state):
        self.value = state.unpack_int()

    @operation(LockMode.READ)
    def get(self):
        return self.value

    @operation(LockMode.WRITE)
    def add(self, amount):
        self.value += amount
        return self.value


class Register(PersistentObject):
    """A second object type: holds a string."""

    TYPE_NAME = "tests.Register"

    def __init__(self, uid, text: str = ""):
        super().__init__(uid)
        self.text = text

    def save_state(self, out):
        out.pack_string(self.text)

    def restore_state(self, state):
        self.text = state.unpack_string()

    @operation(LockMode.READ)
    def read(self):
        return self.text

    @operation(LockMode.WRITE)
    def write(self, text):
        self.text = text
        return self.text


def build_system(policy=None, scheme: str = "standard",
                 sv=("s1", "s2", "s3"), st=("t1", "t2"),
                 value: int = 100, **config_kwargs):
    """A small standard deployment with one Counter object."""
    config = SystemConfig(seed=config_kwargs.pop("seed", 7),
                          binding_scheme=scheme, **config_kwargs)
    system = DistributedSystem(config)
    system.registry.register(Counter)
    system.registry.register(Register)
    for host in sv:
        system.add_node(host, server=True)
    for host in st:
        system.add_node(host, store=True)
    client = system.add_client("c1", policy=policy or SingleCopyPassive())
    uid = system.create_object(Counter(system.new_uid(), value=value),
                               sv_hosts=list(sv), st_hosts=list(st))
    return system, client, uid


def add_work(uid, amount=1):
    """A transaction body adding ``amount`` to the counter."""
    def work(txn):
        return (yield from txn.invoke(uid, "add", amount))
    return work


def get_work(uid):
    """A read-only transaction body."""
    def work(txn):
        return (yield from txn.invoke(uid, "get"))
    return work


def shard_entry_state(system, shard, uid):
    """One shard replica's committed view of an entry (probe locks
    released)."""
    db = system.db.shards[shard]
    snapshot = db.get_server_with_uses((0,), str(uid))
    view = db.get_view((0,), str(uid))
    system._release_probe_locks()
    return (tuple(snapshot.hosts),
            {h: dict(c) for h, c in snapshot.uses.items()},
            tuple(view))


def assert_shard_replicas_agree(system, uid, replication=2):
    """Every replica shard of ``uid`` holds the same committed entry."""
    replicas = system.shard_router.preference_list(uid, replication)
    states = [shard_entry_state(system, shard, uid) for shard in replicas]
    assert all(state == states[0] for state in states), \
        f"replicas diverge for {uid}: {dict(zip(replicas, states))}"


def arm_crash_after_prepare(system, db, node):
    """Doctor ``db.prepare`` to crash ``node`` right after its first
    "ok" vote -- the reply is already on the wire, so the crash lands
    exactly between the two commit phases.  Returns the list of action
    paths it fired on; restore the method with ``del db.prepare``.
    """
    real_prepare = db.prepare
    fired = []

    def prepare_then_die(action_path):
        vote = real_prepare(action_path)
        if vote == "ok" and not fired:
            fired.append(tuple(action_path))
            system.scheduler.schedule(0.0, node.crash)
        return vote

    db.prepare = prepare_then_die
    return fired


@pytest.fixture
def counter_cls():
    return Counter


@pytest.fixture
def register_cls():
    return Register
