"""End-to-end transaction tests through the client runtime."""

import pytest

from repro import SingleCopyPassive, TxnAborted

from tests.conftest import Register, add_work, build_system, get_work


def test_commit_updates_stores_and_value():
    system, client, uid = build_system(value=10)
    result = system.run_transaction(client, add_work(uid, 5))
    assert result.committed
    assert result.value == 15
    assert set(system.store_versions(uid).values()) == {2}


def test_read_only_txn_copies_nothing():
    system, client, uid = build_system()
    before = dict(system.store_versions(uid))
    result = system.run_transaction(client, get_work(uid), read_only=True)
    assert result.committed
    assert result.value == 100
    assert system.store_versions(uid) == before  # read optimisation


def test_sequential_txns_accumulate():
    system, client, uid = build_system(value=0)
    for i in range(5):
        result = system.run_transaction(client, add_work(uid, 1))
        assert result.committed
    final = system.run_transaction(client, get_work(uid))
    assert final.value == 5
    assert set(system.store_versions(uid).values()) == {6}


def test_application_abort_rolls_back():
    system, client, uid = build_system(value=10)

    def work(txn):
        yield from txn.invoke(uid, "add", 5)
        txn.abort("changed my mind")

    result = system.run_transaction(client, work)
    assert not result.committed
    assert result.reason == "changed my mind"
    check = system.run_transaction(client, get_work(uid))
    assert check.value == 10
    assert set(system.store_versions(uid).values()) == {1}


def test_write_in_readonly_txn_aborts():
    system, client, uid = build_system()
    result = system.run_transaction(client, add_work(uid, 1), read_only=True)
    assert not result.committed
    assert result.reason.startswith("write_in_readonly_txn")


def test_multi_object_transaction():
    system, client, uid = build_system(value=1)
    reg_uid = system.create_object(
        Register(system.new_uid(), text="initial"),
        sv_hosts=["s1"], st_hosts=["t1", "t2"])

    def work(txn):
        count = yield from txn.invoke(uid, "add", 1)
        yield from txn.invoke(reg_uid, "write", f"count={count}")
        return count

    result = system.run_transaction(client, work)
    assert result.committed

    def check(txn):
        return (yield from txn.invoke(reg_uid, "read"))

    assert system.run_transaction(client, check).value == "count=2"


def test_abort_rolls_back_all_objects():
    system, client, uid = build_system(value=1)
    reg_uid = system.create_object(
        Register(system.new_uid(), text="initial"),
        sv_hosts=["s1"], st_hosts=["t1"])

    def work(txn):
        yield from txn.invoke(uid, "add", 1)
        yield from txn.invoke(reg_uid, "write", "dirty")
        txn.abort()

    system.run_transaction(client, work)

    def check(txn):
        a = yield from txn.invoke(uid, "get")
        b = yield from txn.invoke(reg_uid, "read")
        return a, b

    assert system.run_transaction(client, check).value == (1, "initial")


def test_lock_conflict_between_clients_aborts_second():
    system, client, uid = build_system()
    client2 = system.add_client("c2", policy=SingleCopyPassive())

    outcome = {}

    def holder(txn):
        yield from txn.invoke(uid, "add", 1)
        # Hold the object lock while the other client tries.
        process2 = client2.transaction(add_work(uid, 1))
        result2 = yield process2
        outcome["second"] = result2
        return "held"

    result = system.run_transaction(client, holder)
    assert result.committed
    assert not outcome["second"].committed
    assert outcome["second"].reason.startswith("lock_refused")


def test_unknown_object_aborts():
    from repro.storage import Uid
    system, client, uid = build_system()
    ghost = Uid("sys", 999)

    def work(txn):
        return (yield from txn.invoke(ghost, "get"))

    result = system.run_transaction(client, work)
    assert not result.committed


def test_metrics_counters_track_outcomes():
    system, client, uid = build_system()
    system.run_transaction(client, add_work(uid))
    system.run_transaction(client, add_work(uid))

    def aborting(txn):
        yield from txn.invoke(uid, "get")
        txn.abort()

    system.run_transaction(client, aborting)
    assert system.metrics.counter_value("txn.committed") == 2
    assert system.metrics.counter_value("txn.aborted") == 1


def test_txn_duration_measured():
    system, client, uid = build_system()
    result = system.run_transaction(client, add_work(uid))
    assert result.duration > 0
