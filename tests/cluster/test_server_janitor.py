"""Tests for the server-side orphaned-action janitor."""

from tests.conftest import add_work, build_system, get_work


def test_dead_clients_action_aborted_and_locks_freed():
    system, client, uid = build_system(sv=("s1",), st=("t1",))
    client2 = system.add_client("c2")

    def crashy(txn):
        yield from txn.invoke(uid, "add", 7)
        system.nodes["c1"].crash()
        yield from txn.invoke(uid, "add", 7)

    client.transaction(crashy)
    system.run(until=1.0)
    # The object is locked by the dead client's action right now.
    blocked = system.run_transaction(client2, add_work(uid, 1))
    assert not blocked.committed
    # The janitor detects the crash, aborts, restores the before-image.
    system.run(until=10.0)
    host = system.nodes["s1"].rpc.service("servers")
    assert host.janitor_aborts >= 1
    after = system.run_transaction(client2, get_work(uid))
    assert after.committed
    assert after.value == 100  # dirty +7 rolled back


def test_live_client_long_action_not_disturbed():
    from repro.sim.process import Timeout
    system, client, uid = build_system(sv=("s1",), st=("t1",))

    def slow(txn):
        yield from txn.invoke(uid, "add", 1)
        yield Timeout(8.0)  # far beyond several janitor rounds
        v = yield from txn.invoke(uid, "add", 1)
        return v

    result = system.run_transaction(client, slow)
    assert result.committed
    assert result.value == 102
    host = system.nodes["s1"].rpc.service("servers")
    assert host.janitor_aborts == 0


def test_tracking_cleared_on_commit():
    system, client, uid = build_system(sv=("s1",), st=("t1",))
    system.run_transaction(client, add_work(uid, 1))
    host = system.nodes["s1"].rpc.service("servers")
    assert host._action_clients == {}


def test_client_recovering_does_not_resurrect_action():
    """The client node recovers, but the old action's locks were (or will
    be) janitored: the recovered client starts fresh transactions."""
    system, client, uid = build_system(sv=("s1",), st=("t1",))

    def crashy(txn):
        yield from txn.invoke(uid, "add", 7)
        system.nodes["c1"].crash()

    client.transaction(crashy)
    system.run(until=0.5)
    system.nodes["c1"].recover()
    system.run(until=10.0)
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    final = system.run_transaction(client, get_work(uid))
    # Only the committed +1 is visible; the orphaned +7 was rolled back.
    assert final.value == 101
