"""Tests for the orphan-shadow termination protocol."""

from repro import DistributedSystem, SystemConfig
from repro.cluster.recovery import ShadowResolver
from repro.storage import Uid

from tests.conftest import Counter


def make_world(seed=3):
    system = DistributedSystem(SystemConfig(seed=seed,
                                            enable_shadow_resolvers=True))
    system.registry.register(Counter)
    system.add_node("s1", server=True)
    system.add_node("t1", store=True)
    system.add_node("t2", store=True)
    client = system.add_client("c1")
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=["s1"], st_hosts=["t1", "t2"])
    return system, client, uid


def test_orphan_shadow_committed_when_peer_has_newer_version():
    """Coordinator crashed between commit_shadow(t1) and commit_shadow(t2):
    t2's resolver learns v2 committed at t1 and installs its shadow."""
    system, client, uid = make_world()
    t1, t2 = system.nodes["t1"], system.nodes["t2"]
    # Simulate the torn phase-2 directly on the stores.
    state = t1.object_store.read_committed(uid)
    t1.object_store.write_shadow(uid, b"newer" + state.buffer, 2)
    t2.object_store.write_shadow(uid, b"newer" + state.buffer, 2)
    t1.object_store.commit_shadow(uid)   # phase 2 reached t1 ...
    # ... but never t2 (coordinator died).  Let the resolver work.
    system.run(until=10.0)
    assert t2.object_store.version_of(uid) == 2
    assert not t2.object_store.has_shadow(uid)
    resolver = system.shadow_resolvers["t2"]
    assert resolver.committed == 1


def test_orphan_shadow_discarded_when_no_peer_committed():
    """Coordinator crashed before any commit_shadow: presumed abort."""
    system, client, uid = make_world()
    t1, t2 = system.nodes["t1"], system.nodes["t2"]
    state = t1.object_store.read_committed(uid)
    t1.object_store.write_shadow(uid, b"x" + state.buffer, 2)
    t2.object_store.write_shadow(uid, b"x" + state.buffer, 2)
    system.run(until=10.0)
    assert t1.object_store.version_of(uid) == 1
    assert t2.object_store.version_of(uid) == 1
    assert not t1.object_store.has_shadow(uid)
    assert not t2.object_store.has_shadow(uid)


def test_resolution_waits_while_peer_unreachable():
    """With the deciding peer down, the shadow is kept (undecidable)."""
    system, client, uid = make_world()
    t1, t2 = system.nodes["t1"], system.nodes["t2"]
    state = t1.object_store.read_committed(uid)
    t1.object_store.write_shadow(uid, b"y" + state.buffer, 2)
    t1.object_store.commit_shadow(uid)
    t2.object_store.write_shadow(uid, b"y" + state.buffer, 2)
    t1.crash()  # the only peer that knows the verdict is down
    system.run(until=10.0)
    assert t2.object_store.has_shadow(uid)  # still undecided
    t1.recover()
    system.run(until=system.scheduler.now + 10.0)
    assert not t2.object_store.has_shadow(uid)
    assert t2.object_store.version_of(uid) == 2


def test_resolver_requires_store():
    system = DistributedSystem(SystemConfig(seed=1))
    node = system.add_node("plain")
    import pytest
    with pytest.raises(ValueError):
        ShadowResolver(node, "namenode")
