"""The two-plane network: a dedicated replication NIC per shard host.

With ``dedicated_sync_nic`` every shard host attaches a second
interface (``<name>.sync``) carrying all replica-maintenance traffic
-- resync, anti-entropy, migration copies, read repair -- while client
requests stay on the primary NIC.  These tests pin the topology
contract: where the sync service registers, how the second NIC follows
host liveness, what a gated recovering host still answers, and that
the per-plane traffic meters actually separate the two kinds of load.
"""

import pytest

from repro import DistributedSystem, SystemConfig
from repro.cluster.node import SYNC_NIC_SUFFIX
from repro.naming.group_view_db import SERVICE_NAME, SYNC_SERVICE_NAME

from tests.conftest import add_work, get_work
from tests.integration.test_sharded_nameserver import build


def build_two_plane(**config_kwargs):
    config_kwargs.setdefault("dedicated_sync_nic", True)
    config_kwargs.setdefault("nameserver_replication", 2)
    return build(shards=3, objects=6, **config_kwargs)


def test_shard_hosts_get_a_second_nic_and_split_services():
    system, _, _ = build_two_plane()
    for name in system.shard_hosts:
        node = system.nodes[name]
        assert node.sync_nic is not None
        assert node.sync_nic.name == name + SYNC_NIC_SUFFIX
        assert node.sync_rpc is not node.rpc
        assert node.sync_suffix == SYNC_NIC_SUFFIX
        # The client-facing service answers on the primary NIC only;
        # the sync side door on the replication NIC only.
        assert node.rpc.has_service(SERVICE_NAME)
        assert not node.rpc.has_service(SYNC_SERVICE_NAME)
        assert node.sync_rpc.has_service(SYNC_SERVICE_NAME)
        assert not node.sync_rpc.has_service(SERVICE_NAME)
    # Client nodes stay single-homed.
    assert system.nodes["c0"].sync_nic is None
    assert system.nodes["c0"].sync_rpc is system.nodes["c0"].rpc
    assert system.sync_suffix == SYNC_NIC_SUFFIX


def test_shared_nic_fallback_aliases_the_primary_plane():
    system, _, _ = build_two_plane(dedicated_sync_nic=False)
    for name in system.shard_hosts:
        node = system.nodes[name]
        assert node.sync_nic is None
        assert node.sync_rpc is node.rpc
        assert node.sync_suffix == ""
        assert node.rpc.has_service(SYNC_SERVICE_NAME)
    assert system.sync_suffix == ""


def test_sync_nic_follows_host_liveness():
    system, _, _ = build_two_plane()
    victim = system.shard_hosts[0]
    node = system.nodes[victim]
    assert node.nic.up and node.sync_nic.up
    node.crash()
    assert not node.nic.up and not node.sync_nic.up
    node.recover()
    assert node.nic.up and node.sync_nic.up


def test_gated_recovering_host_serves_the_sync_side_door_only():
    system, (client,), uids = build_two_plane(sv=("a1", "a2"),
                                              st=("b1", "b2"))
    victim = system.shard_router.shard_for(uids[0])
    system.nodes[victim].crash()
    # Crash a store host too: the next commits Exclude it from every
    # touched entry's St on the surviving replicas -- a durable change
    # the downed shard host misses and must copy back on resync.
    system.nodes["b2"].crash()
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed

    system.nodes[victim].recover()
    node = system.nodes[victim]
    # Recovery gating pulls the *client* service until resync converges
    # -- but the sync side door answers immediately, on its own NIC, so
    # peers can probe and repair the recovering host the whole time.
    assert not node.rpc.has_service(SERVICE_NAME)
    assert node.sync_rpc.has_service(SYNC_SERVICE_NAME)
    resyncer = system.shard_resyncers[victim]
    assert not resyncer.serving
    system.run(until=system.scheduler.now + 30.0)
    assert resyncer.serving
    assert node.rpc.has_service(SERVICE_NAME)
    assert resyncer.entries_refreshed > 0
    for uid in uids:
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1


def test_traffic_meters_split_client_and_sync_planes():
    system, (client,), uids = build_two_plane()
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed
    snapshot = system.snapshot_metrics()
    client_rpcs = sum(
        snapshot.get(f"traffic.{name}.client.rpcs_in", 0)
        for name in system.shard_hosts)
    sync_rpcs = sum(
        snapshot.get(f"traffic.{name}.sync.rpcs_in", 0)
        for name in system.shard_hosts)
    assert client_rpcs > 0
    assert sync_rpcs == 0  # no maintenance ran yet: planes separate

    victim = system.shard_router.shard_for(uids[0])
    system.nodes[victim].crash()
    assert system.run_transaction(client, add_work(uids[0], 1)).committed
    system.nodes[victim].recover()
    system.run(until=system.scheduler.now + 30.0)
    snapshot = system.snapshot_metrics()
    assert snapshot.get(f"traffic.{victim}.sync.rpcs_out", 0) > 0, \
        "resync probes and copies must be metered on the sync plane"
    assert snapshot.get(f"traffic.{victim}.sync.bytes_out", 0) > 0


def test_sync_plane_latency_and_throttle_knobs_apply():
    system, _, _ = build_two_plane(sync_latency=0.003,
                                   sync_throttle_rate=500.0,
                                   sync_service_time=0.0005)
    for name in system.shard_hosts:
        node = system.nodes[name]
        assert node.sync_nic.latency is not None
        assert node.sync_nic.latency.typical == pytest.approx(0.003)
        assert node.sync_nic.throttle is not None
        assert node.sync_nic.throttle.rate == 500.0


def test_weight_only_rebalance_moves_entries_and_loses_nothing():
    system, (client,), uids = build(shards=3, objects=12,
                                    nameserver_replication=2)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed

    process = system.set_shard_weight("namenode1", 3.0)
    outcome = system.run_until(process, timeout=120.0)

    assert system.shard_router.weight_of("namenode1") == 3.0
    assert outcome["reweighted"] == {"namenode1": 3.0}
    assert outcome["partitions_moved"] > 0
    assert outcome["partitions_moved"] <= outcome["movement_bound"]
    assert system.shard_router.transition is None
    for uid in uids:  # every binding survived the weight shuffle
        owners = set(system.shard_router.preference_list(uid, 2))
        for shard, db in system.db.shards.items():
            assert db.knows(str(uid)) == (shard in owners)
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1


def test_add_shard_host_with_weight_takes_a_larger_share():
    system, (client,), uids = build(shards=2, objects=8,
                                    nameserver_replication=2)
    for uid in uids:
        assert system.run_transaction(client, add_work(uid, 1)).committed

    process = system.add_shard_host(weight=2.0)
    system.run_until(process, timeout=120.0)

    assert system.shard_router.weight_of("namenode2") == 2.0
    spread = system.shard_router.partition_spread()
    # Weight 2.0 against two weight-1.0 peers: the newcomer should own
    # the largest share (~half the partitions).
    assert spread["namenode2"] == max(spread.values())
    for uid in uids:
        result = system.run_transaction(client, get_work(uid))
        assert result.committed and result.value == 1


def test_boot_weights_flow_from_config():
    system, _, _ = build(shards=3, objects=0, shard_weights=(1.0, 2.0, 1.0))
    assert system.shard_router.weights == {
        "namenode0": 1.0, "namenode1": 2.0, "namenode2": 1.0}
    with pytest.raises(ValueError):
        DistributedSystem(SystemConfig(nameserver_shards=3,
                                       shard_weights=(1.0, 2.0)))
