"""Tests for client-side group invocation."""

from repro import ActiveReplication, DistributedSystem, SystemConfig
from repro.cluster.group_invoke import GroupInvoker
from repro.cluster.server_host import SERVER_SERVICE

from tests.conftest import Counter


def make_world(n_replicas=3, seed=3):
    system = DistributedSystem(SystemConfig(seed=seed))
    system.registry.register(Counter)
    hosts = [f"a{i}" for i in range(1, n_replicas + 1)]
    for host in hosts:
        system.add_node(host, server=True)
    system.add_node("t1", store=True)
    client_node = system.add_node("client")
    invoker = GroupInvoker(client_node)
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=hosts, st_hosts=["t1"])

    # Activate and group-join every replica directly.
    def setup():
        for host in hosts:
            yield client_node.rpc.call(host, SERVER_SERVICE, "activate",
                                       (900,), str(uid), ["t1"])
        for host in hosts:
            yield client_node.rpc.call(host, SERVER_SERVICE, "join_group",
                                       str(uid), hosts)

    system.scheduler.run_until_settled(system.scheduler.spawn(setup()),
                                       until=100.0)
    return system, invoker, uid, hosts


def invoke(system, invoker, hosts, uid, op, args=(), action=(901,)):
    def body():
        return (yield from invoker.invoke(hosts, uid, action, op, args))
    return system.scheduler.run_until_settled(
        system.scheduler.spawn(body()), until=100.0)


def test_all_replicas_respond():
    system, invoker, uid, hosts = make_world()
    result = invoke(system, invoker, hosts, uid, "add", (5,))
    assert sorted(result.responders) == sorted(hosts)
    assert result.any_success
    assert result.first_value() == 5


def test_every_replica_executed():
    system, invoker, uid, hosts = make_world()
    invoke(system, invoker, hosts, uid, "add", (1,))
    invoke(system, invoker, hosts, uid, "add", (1,))
    for host in hosts:
        server_host = system.nodes[host].rpc.service("servers")
        assert server_host._server(str(uid)).invocations == 2


def test_crashed_member_missing_from_responders():
    system, invoker, uid, hosts = make_world()
    system.nodes["a2"].crash()
    result = invoke(system, invoker, hosts, uid, "add", (1,))
    assert "a2" not in result.responders
    assert set(result.responders) == {"a1", "a3"}
    assert result.any_success


def test_error_replies_collected():
    system, invoker, uid, hosts = make_world()
    # A conflicting action holds the object lock everywhere.
    invoke(system, invoker, hosts, uid, "add", (1,), action=(950,))
    result = invoke(system, invoker, hosts, uid, "add", (1,), action=(951,))
    assert not result.any_success
    error_type, _ = result.first_error()
    assert error_type == "LockRefused"


def test_sequencer_down_no_responders():
    system, invoker, uid, hosts = make_world()
    system.nodes["a1"].crash()  # a1 sequences the group
    result = invoke(system, invoker, hosts, uid, "add", (1,))
    assert result.responders == []


def test_late_replies_after_window_ignored():
    system, invoker, uid, hosts = make_world()
    result = invoke(system, invoker, hosts, uid, "add", (1,))
    # Run on; stray replies must not corrupt the closed request table.
    system.run(until=system.scheduler.now + 5)
    assert len(result.responders) == 3
