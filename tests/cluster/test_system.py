"""Tests for the DistributedSystem harness."""

import pytest

from repro import DistributedSystem, FaultPlan, SingleCopyPassive, SystemConfig

from tests.conftest import Counter, add_work, build_system, get_work


def test_determinism_same_seed_same_outcome():
    def run(seed):
        system, client, uid = build_system(seed=seed)
        results = [system.run_transaction(client, add_work(uid, 1)).committed
                   for _ in range(5)]
        return results, system.scheduler.now, system.store_versions(uid)

    assert run(3) == run(3)


def test_different_seeds_allowed():
    # Not asserting inequality of outcomes (both may commit everything),
    # just that distinct seeds build distinct RNG streams without error.
    build_system(seed=1)
    build_system(seed=2)


def test_create_object_requires_store_host():
    system = DistributedSystem(SystemConfig(seed=1))
    system.registry.register(Counter)
    system.add_node("s1", server=True)
    with pytest.raises(ValueError):
        system.create_object(Counter(system.new_uid()), ["s1"], ["s1"])


def test_duplicate_node_name_rejected():
    system = DistributedSystem(SystemConfig(seed=1))
    system.add_node("n")
    with pytest.raises(ValueError):
        system.add_node("n")


def test_fault_plan_installation():
    system, client, uid = build_system()
    plan = FaultPlan().outage(1.0, 5.0, "s1")
    system.install_fault_plan(plan)
    system.run(until=2.0)
    assert system.nodes["s1"].crashed
    system.run(until=6.0)
    assert not system.nodes["s1"].crashed


def test_db_probe_helpers_leave_no_locks():
    system, client, uid = build_system()
    for _ in range(3):
        system.db_sv(uid)
        system.db_st(uid)
    assert not system.db.server_db.locks.owners()
    assert not system.db.state_db.locks.owners()


def test_store_versions_skips_crashed_nodes():
    system, client, uid = build_system(st=("t1", "t2"))
    system.nodes["t2"].crash()
    assert list(system.store_versions(uid)) == ["t1"]


def test_snapshot_metrics_contains_txn_counters():
    system, client, uid = build_system()
    system.run_transaction(client, add_work(uid))
    snapshot = system.snapshot_metrics()
    assert snapshot["txn.committed"] == 1


def test_uniform_latency_config():
    system, client, uid = build_system(fixed_latency=None)
    result = system.run_transaction(client, add_work(uid))
    assert result.committed


def test_scheme_selection_per_client():
    system, client, uid = build_system(scheme="standard")
    other = system.add_client("c9", policy=SingleCopyPassive(),
                              scheme="independent")
    assert other.scheme.name == "independent"
    assert client.scheme.name == "standard"
    result = system.run_transaction(other, add_work(uid))
    assert result.committed


def test_unknown_scheme_rejected():
    system, _, _ = build_system()
    with pytest.raises(KeyError):
        system.add_client("cX", scheme="nonsense")


def test_run_transaction_timeout_guard():
    from repro.sim.process import Timeout
    system, client, uid = build_system()

    def forever(txn):
        yield Timeout(10_000.0)

    with pytest.raises(RuntimeError):
        system.run_transaction(client, forever, timeout=1.0)


def test_new_uid_monotonic():
    system = DistributedSystem(SystemConfig(seed=1))
    uids = [system.new_uid() for _ in range(5)]
    assert uids == sorted(uids)
    assert len(set(uids)) == 5
