"""Tests for object servers: locking, before-images, activation."""

import pytest

from repro.actions import LockRefused
from repro.cluster import DistributedSystem, SystemConfig
from repro.cluster.server_host import ObjectServer
from repro.storage import Uid

from tests.conftest import Counter


def make_object_server(value=10):
    system = DistributedSystem(SystemConfig(seed=1))
    node = system.add_node("n", server=True)
    obj = Counter(Uid("sys", 1), value=value)
    return ObjectServer(node, obj, version=1)


def test_invoke_runs_operation():
    server = make_object_server(5)
    assert server.invoke((1,), "get", ()) == 5
    assert server.invoke((1,), "add", (3,)) == 8


def test_unknown_operation_rejected():
    server = make_object_server()
    with pytest.raises(AttributeError):
        server.invoke((1,), "save_state", ())  # not an @operation


def test_conflicting_actions_refused():
    server = make_object_server()
    server.invoke((1,), "add", (1,))
    with pytest.raises(LockRefused):
        server.invoke((2,), "get", ())


def test_readers_share():
    server = make_object_server()
    assert server.invoke((1,), "get", ()) == 10
    assert server.invoke((2,), "get", ()) == 10


def test_abort_restores_before_image():
    server = make_object_server(10)
    server.invoke((1,), "add", (5,))
    server.invoke((1,), "add", (5,))
    server.abort((1,))
    assert server.invoke((2,), "get", ()) == 10
    assert server.version == 1


def test_commit_bumps_version_and_releases():
    server = make_object_server(10)
    server.invoke((1,), "add", (5,))
    server.commit((1,))
    assert server.version == 2
    assert server.invoke((2,), "get", ()) == 15


def test_readonly_commit_keeps_version():
    server = make_object_server()
    server.invoke((1,), "get", ())
    server.commit((1,))
    assert server.version == 1


def test_nested_abort_undoes_only_the_nested_writes():
    server = make_object_server(10)
    server.invoke((1,), "add", (1,))        # parent writes: 11, image@10
    server.invoke((1, 2), "add", (100,))    # child writes: 111, image@11
    server.abort((1, 2))                    # child abort rewinds to 11
    assert server.invoke((1,), "get", ()) == 11
    server.abort((1,))                      # parent abort rewinds to 10
    assert server.invoke((3,), "get", ()) == 10


def test_parent_abort_after_nested_commit_rewinds_fully():
    server = make_object_server(10)
    server.invoke((1, 2), "add", (100,))    # child writes FIRST: image@10
    # (nested commit = records merge client-side; the server keeps the
    # child's image, which the parent's abort must honour)
    server.invoke((1,), "add", (1,))        # parent writes: image@110
    server.abort((1,))
    assert server.invoke((3,), "get", ()) == 10


def test_top_commit_after_nested_writes_keeps_everything():
    server = make_object_server(10)
    server.invoke((1, 2), "add", (100,))
    server.invoke((1,), "add", (1,))
    server.commit((1,))
    assert server.invoke((3,), "get", ()) == 111
    assert server.version == 2


def test_quiescence():
    server = make_object_server()
    assert server.quiescent
    server.invoke((1,), "get", ())
    assert not server.quiescent
    server.commit((1,))
    assert server.quiescent


def test_get_state_install_state_roundtrip():
    server = make_object_server(42)
    buffer, version = server.get_state()
    other = make_object_server(0)
    other.install_state(buffer, version)
    assert other.invoke((9,), "get", ()) == 42
    assert other.version == version
