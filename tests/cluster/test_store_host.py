"""Tests for the store host RPC service."""

import pytest

from repro import DistributedSystem, SystemConfig
from repro.cluster.store_host import STORE_SERVICE, StoreHost
from repro.net.errors import RpcRemoteError, RpcTimeout
from repro.storage import Uid


def make_world():
    system = DistributedSystem(SystemConfig(seed=1))
    store_node = system.add_node("t1", store=True)
    caller = system.add_node("caller")
    return system, store_node, caller


def call(system, caller, method, *args):
    future = caller.rpc.call("t1", STORE_SERVICE, method, *args)
    return system.scheduler.run_until_settled(future, until=100.0)


def test_read_roundtrip():
    system, store_node, caller = make_world()
    uid = Uid("sys", 9)
    store_node.object_store.install(uid, b"hello", 3)
    buffer, version = call(system, caller, "read", str(uid))
    assert buffer == b"hello"
    assert version == 3


def test_read_missing_is_remote_error():
    system, _, caller = make_world()
    with pytest.raises(RpcRemoteError) as info:
        call(system, caller, "read", "sys:404")
    assert info.value.remote_type == "NoSuchState"


def test_shadow_protocol_over_rpc():
    system, store_node, caller = make_world()
    uid = Uid("sys", 9)
    store_node.object_store.install(uid, b"v1", 1)
    assert call(system, caller, "write_shadow", str(uid), b"v2", 2)
    assert call(system, caller, "version_of", str(uid)) == 1
    assert call(system, caller, "commit_shadow", str(uid))
    assert call(system, caller, "version_of", str(uid)) == 2


def test_discard_shadow_over_rpc():
    system, store_node, caller = make_world()
    uid = Uid("sys", 9)
    store_node.object_store.install(uid, b"v1", 1)
    call(system, caller, "write_shadow", str(uid), b"v2", 2)
    call(system, caller, "discard_shadow", str(uid))
    buffer, version = call(system, caller, "read", str(uid))
    assert buffer == b"v1"


def test_install_and_list_uids():
    system, store_node, caller = make_world()
    call(system, caller, "install", "sys:1", b"a", 1)
    call(system, caller, "install", "sys:2", b"b", 1)
    assert call(system, caller, "list_uids") == ["sys:1", "sys:2"]


def test_crashed_store_times_out():
    system, store_node, caller = make_world()
    store_node.crash()
    with pytest.raises(RpcTimeout):
        call(system, caller, "ping")


def test_install_on_requires_store():
    system = DistributedSystem(SystemConfig(seed=1))
    node = system.add_node("plain")
    with pytest.raises(ValueError):
        StoreHost(node)


def test_service_reinstalled_after_recovery():
    system, store_node, caller = make_world()
    uid = Uid("sys", 9)
    store_node.object_store.install(uid, b"x", 1)
    store_node.crash()
    store_node.recover()
    buffer, version = call(system, caller, "read", str(uid))
    assert buffer == b"x"
