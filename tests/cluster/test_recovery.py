"""Tests for the recovery protocols (paper section 4.2 and 4.1.2)."""

from repro import SingleCopyPassive, SystemConfig

from tests.conftest import add_work, build_system, get_work


def test_excluded_store_refreshes_and_reincludes():
    system, client, uid = build_system(st=("t1", "t2"))
    system.nodes["t2"].crash()
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    assert system.db_st(uid) == ["t1"]
    system.nodes["t2"].recover()
    system.run(until=system.scheduler.now + 10)
    assert sorted(system.db_st(uid)) == ["t1", "t2"]
    versions = system.store_versions(uid)
    assert versions["t2"] == versions["t1"]  # refreshed before Include


def test_recovered_store_with_current_state_reincludes_without_refresh():
    system, client, uid = build_system(st=("t1", "t2"))
    # Crash t2 with NO intervening commits: its state stays current.
    system.nodes["t2"].crash()
    # A commit excludes it...
    # (no commit here: exercise the no-refresh path)
    system.nodes["t2"].recover()
    system.run(until=system.scheduler.now + 10)
    assert sorted(system.db_st(uid)) == ["t1", "t2"]
    manager = system.recovery_managers["t2"]
    assert manager.states_refreshed == 0


def test_multiple_commits_while_down_still_one_refresh():
    system, client, uid = build_system(st=("t1", "t2"))
    system.nodes["t2"].crash()
    for _ in range(3):
        assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes["t2"].recover()
    system.run(until=system.scheduler.now + 10)
    versions = system.store_versions(uid)
    assert versions["t2"] == versions["t1"] == 4


def test_server_node_reinsert_waits_for_quiescence():
    """A recovering server node must not serve while the object is active."""
    system, client, uid = build_system(sv=("s1", "s2"), st=("t1",),
                                       scheme="independent")
    # Crash and immediately recover s2; its recovery Insert needs the
    # object quiescent.  Run a transaction binding s1 concurrently.
    system.nodes["s2"].crash()
    system.nodes["s2"].recover()
    result = system.run_transaction(client, add_work(uid, 1))
    assert result.committed
    system.run(until=system.scheduler.now + 20)
    manager = system.recovery_managers["s2"]
    assert manager.recoveries_completed == 1
    # After recovery completes, s2 serves again.
    host = system.nodes["s2"].rpc.service("servers")
    assert host.accepting


def test_recovering_server_refuses_activation_until_insert():
    system, client, uid = build_system(sv=("s1", "s2"), st=("t1",))
    system.nodes["s2"].crash()
    system.nodes["s2"].recover()
    host = system.nodes["s2"].rpc.service("servers")
    # The recovery process hasn't run yet (no simulation time passed).
    assert not host.accepting
    system.run(until=system.scheduler.now + 10)
    assert host.accepting


def test_store_and_server_roles_both_recover():
    """The alpha=beta case: one node is both server and store."""
    from tests.conftest import Counter
    from repro import DistributedSystem
    system = DistributedSystem(SystemConfig(seed=3))
    system.registry.register(Counter)
    system.add_node("dual", server=True, store=True)
    system.add_node("t1", store=True)
    client = system.add_client("c1", policy=SingleCopyPassive())
    uid = system.create_object(Counter(system.new_uid(), value=5),
                               sv_hosts=["dual"], st_hosts=["dual", "t1"])
    assert system.run_transaction(client, add_work(uid, 1)).committed
    system.nodes["dual"].crash()
    # With the only server down the object is unavailable...
    unavailable = system.run_transaction(client, add_work(uid, 1))
    assert not unavailable.committed
    system.nodes["dual"].recover()
    system.run(until=system.scheduler.now + 20)
    # ...and available again after full recovery.
    assert system.run_transaction(client, add_work(uid, 1)).committed
    assert sorted(system.db_st(uid)) == ["dual", "t1"]
