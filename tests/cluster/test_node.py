"""Tests for node crash/recovery semantics."""

from repro.net import FixedLatency, Network
from repro.cluster import Node
from repro.sim import Scheduler, Timeout


def make_node(name="n", has_store=False):
    s = Scheduler()
    net = Network(s, FixedLatency(0.01))
    return s, net, Node(s, net, name, has_store=has_store)


def test_crash_takes_interface_down():
    s, net, node = make_node()
    node.crash()
    assert node.crashed
    assert not node.nic.up


def test_crash_wipes_volatile_keeps_stable():
    s, net, node = make_node(has_store=True)
    from repro.storage import Uid
    node.volatile.put("scratch", 123)
    node.object_store.install(Uid("n", 1), b"data", 1)
    node.crash()
    node.recover()
    assert node.volatile.get("scratch") is None
    assert node.object_store.read_committed(Uid("n", 1)).buffer == b"data"


def test_crash_kills_node_processes():
    s, net, node = make_node()
    progress = []

    def body():
        while True:
            yield Timeout(1.0)
            progress.append(s.now)

    node.spawn(body(), name="worker")
    s.schedule(2.5, node.crash)
    s.run(until=10.0)
    assert all(t < 2.5 for t in progress)


def test_crash_clears_rpc_services_recover_reruns_boot_hooks():
    s, net, node = make_node()
    installs = []

    def hook(n):
        installs.append(s.now)
        n.rpc.register("svc", object())

    node.add_boot_hook(hook)
    assert node.rpc.has_service("svc")
    node.crash()
    assert not node.rpc.has_service("svc")
    node.recover()
    assert node.rpc.has_service("svc")
    assert len(installs) == 2


def test_double_crash_and_double_recover_are_noops():
    s, net, node = make_node()
    node.crash()
    node.crash()
    assert node.crash_count == 1
    node.recover()
    node.recover()
    assert node.recover_count == 1


def test_availability_timeseries_recorded():
    s, net, node = make_node()
    s.schedule(1.0, node.crash)
    s.schedule(3.0, node.recover)
    s.run()
    series = node.metrics.timeseries(f"node.{node.name}.up").samples
    assert series == [(1.0, 0.0), (3.0, 1.0)]


def test_store_down_while_crashed():
    s, net, node = make_node(has_store=True)
    node.crash()
    assert not node.object_store.available
    node.recover()
    assert node.object_store.available
