"""Shared plumbing for the invariant-linter tests.

``scan_fixture`` copies a corpus file from ``fixtures/`` into a
throwaway tree under a ``src/repro/...`` relpath (the rules are
path-scoped to the real layout) and runs the analyzer over it.
"""

import shutil
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, get_rules

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def scan_fixture(tmp_path):
    def scan(fixture_name, relpath="src/repro/naming/fixture_mod.py",
             rules=None, baseline_keys=()):
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(FIXTURES / fixture_name, target)
        rule_objs = get_rules(rules) if rules is not None else None
        return analyze_paths(tmp_path, [relpath], rules=rule_objs,
                             baseline_keys=baseline_keys)
    return scan
