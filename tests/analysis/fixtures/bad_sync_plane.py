"""Known-bad fixture: maintenance traffic on the client plane.

Scanned as if it were one of the maintenance modules
(``src/repro/naming/read_repair.py``): a resync copy sent over the
gated, fenced client agent queues behind client requests and can
deadlock against recovery gates.  The sync-plane rule must flag the
``rpc.call`` (ident ending ``:client-plane-call``) and the
``client_for`` acquisition (ident ``client_for:client-plane-client``).
"""


class RepairWorker:
    def __init__(self, node, router):
        self.node = node
        self.router = router

    def copy_entry(self, peer, key):
        # Wrong plane: this is the client agent, not the sync NIC.
        entry = yield self.node.rpc.call(peer, "group_view_db", "get", key)
        db = self.router.client_for(key)
        return entry, db
