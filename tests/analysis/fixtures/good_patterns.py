"""Known-good fixture: the approved shapes for every rule.

Each function below is the *correct* counterpart of one known-bad
fixture; the linter must report nothing here.
"""

SERVICE = "group_view_db"


def purge_with_finally(db, node_name, client, tracer):
    # try/finally termination: full protection, no finding.
    action = AtomicAction(node=node_name, tracer=tracer)
    committed = False
    try:
        yield from db.purge_client(action, client)
        yield from action.commit()
        committed = True
    finally:
        if not committed:
            yield from action.abort()


def bind_with_broad_handler(db, client_node, uid, tracer):
    # except BaseException routing through the abort_on_failure helper.
    first = AtomicAction(node=client_node, tracer=tracer)
    try:
        snapshot = yield from db.get_server_with_uses(first, uid)
    except BaseException:
        yield from abort_on_failure(first)
        raise
    yield from first.commit()
    return snapshot


def nested_lookup(db, client_node, parent_action, uid):
    # Nested action: the parent terminates it; out of scope for the rule.
    nested = AtomicAction(node=client_node, parent=parent_action)
    sv = yield from db.get_server(nested, uid)
    yield from nested.commit()
    return sv


def read_inside_one_dispatch(locks, probe, key, table):
    # Lock taken and released with no wire suspension in between.
    locks.try_lock(probe.id, key, WRITE)
    value = table.get(key)
    locks.release_all(probe.id)
    return value


def release_before_wire(locks, rpc, probe, key, peer):
    # The lock dies before the RPC suspension: legal.
    locks.try_lock(probe.id, key, WRITE)
    locks.release_all(probe.id)
    version = yield rpc.call(peer, "store", "version_of", key)
    return version


class FencedInstall:
    def __init__(self, node, db, fence):
        self.node = node
        self.db = db
        self.fence = fence

    def reopen(self):
        # fence= armed: the fence-required rule is satisfied.
        self.node.rpc.register(SERVICE, self.db, fence=self.fence)

    def reopen_side_door(self):
        # The sync side door is unfenced by design (resync must reach
        # hosts the live ring does not own).
        self.node.sync_rpc.register("group_view_db_sync", self.db)
