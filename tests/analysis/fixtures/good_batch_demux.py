"""Known-good fixture: the batch-demux contract done right.

The commit-path handler guards each item with its own try/except and
reports ``("err", type, msg)`` in the failed slot; the read-plane
``entry_versions_many`` sweep below it may fail whole-batch by design
(retried reads are harmless) and must not be flagged.
"""


class DemuxingBatchStore:
    def write_shadow(self, uid_text, buffer, version):
        return True

    def entry_versions(self, uid_text):
        return (1, 1)

    def write_shadow_many(self, items):
        outcomes = []
        for item in items:
            try:
                uid_text, buffer, version = item
                outcomes.append(("ok", self.write_shadow(uid_text, buffer,
                                                         version)))
            except Exception as exc:
                outcomes.append(("err", type(exc).__name__, str(exc)))
        return outcomes

    def entry_versions_many(self, uid_texts):
        # Read plane: exempt -- plain value list, whole-batch failure.
        return [self.entry_versions(uid_text) for uid_text in uid_texts]
