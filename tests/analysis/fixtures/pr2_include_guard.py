"""Known-bad fixture: PR 2's ``_include_guard`` probe-lock leak.

The periodic St-membership guard probed the group view with a fresh
top-level action per object but had no exception path at all: a raised
``get_view`` (or a kill of the guard process) left the probe's read
locks held on the shard, blocking writers on the entry.  The
action-leak rule must flag the loop body (ident ``action:unguarded``).
"""


def include_guard(store, db, node_name, tracer):
    while True:
        yield Timeout(2.0)
        for uid in store.uids():
            action = AtomicAction(node=node_name, tracer=tracer)
            view = yield from db.get_view(action, uid)
            yield from action.commit()
            if node_name not in view:
                yield from reinclude(db, uid, node_name)
