"""Known-good fixture: backoff sleeps that jitter from a seeded stream.

Both approved shapes: the draw mixed into the ``Timeout`` inline, and
the draw folded into the delay variable before the yield (the optional-
rng pattern, where a missing stream falls back to no jitter).  Plus a
plain periodic sleep whose interval is not backoff-derived -- out of
scope for the rule entirely.
"""

from repro.sim.process import Timeout


class RetryingCaller:

    def __init__(self, rng, backoff=0.05):
        self._rng = rng
        self._backoff = backoff

    def inline_jitter(self, rpc):
        for attempt in range(3):
            try:
                return (yield from rpc.call("db", "svc", "prepare"))
            except ConnectionError:
                delay = self._backoff * 2 ** attempt
                yield Timeout(delay + self._rng.uniform(0.0, delay))
        return None

    def folded_jitter(self, rpc, attempt):
        delay = self._backoff * (attempt + 1)
        if self._rng is not None:
            delay += self._rng.uniform(0.0, delay)
        yield Timeout(delay)

    def periodic_poll(self, interval):
        while True:
            yield Timeout(interval)
