"""Known-good fixture: the coherence plane on the sync side throughout.

Scanned as ``src/repro/naming/coherence.py``: the owner registers on
``sync_rpc`` and pushes through ``sync_mcast`` (resolved through the
``__init__`` alias), and the lessee registers over ``io.sync_rpc`` to
the owner's ``sync_target``.  The lessee's *receive* membership lives
on its primary NIC -- a workstation has only one -- which the rule
exempts because joining a group sends nothing.
"""

COHERENCE_SERVICE_NAME = "coherence"


class OwnerCoherenceHost:
    def __init__(self, node, db):
        self.node = node
        self.db = db
        self._mcast = node.sync_mcast

    def install(self):
        self.node.sync_rpc.register(COHERENCE_SERVICE_NAME, self)

    def push(self, group, view, payload):
        self._mcast.send(group, view, payload)


class LesseeClient:
    def __init__(self, node, io, cache):
        self.node = node
        self.io = io
        self.cache = cache
        self._mcast = node.mcast  # receive side only; never sends

    def register(self, owner, uid_text):
        reply = yield self.io.sync_rpc.call(
            self.io.sync_target(owner), COHERENCE_SERVICE_NAME,
            "register_lessee", self.node.name, uid_text)
        return reply

    def handle(self, delivery):
        self.cache.invalidate(delivery.payload[1])
