"""Known-good fixture: per-line suppressions silence real findings.

Both violations below are genuine; the ``# repro: ignore[...]``
comments move them from ``findings`` to ``suppressed``.  A named list
silences only the named rules; ``[*]`` silences everything on the line.
"""

import time


def sampled_wall_clock():
    # A deliberate wall-clock read, acknowledged in place.
    return time.time()  # repro: ignore[determinism]


def wildcard_suppression(locks, rpc, probe, key, peer):
    locks.try_lock(probe.id, key, WRITE)
    version = yield rpc.call(peer, "store", "version_of", key)  # repro: ignore[*]
    locks.release_all(probe.id)
    return version
