"""Known-bad fixture: coherence traffic on the client plane.

Scanned as ``src/repro/naming/coherence.py``: the host registers its
service on the client agent, aliases the client-plane multicast member
for its pushes, and the client registers over the client agent -- all
three are exactly what the coherence-push rule exists to refuse.
"""

COHERENCE_SERVICE_NAME = "coherence"


class LeakyCoherenceHost:
    def __init__(self, node, db):
        self.node = node
        self.db = db
        self._mcast = node.mcast  # client NIC: pushes queue behind reads

    def install(self):
        self.node.rpc.register(COHERENCE_SERVICE_NAME, self)

    def push(self, group, view, payload):
        self._mcast.send(group, view, payload)


class LeakyCoherenceClient:
    def __init__(self, node, io):
        self.node = node
        self.io = io

    def register(self, owner, uid_text):
        reply = yield self.node.rpc.call(owner, COHERENCE_SERVICE_NAME,
                                         "register_lessee", self.node.name,
                                         uid_text)
        return reply
