"""Known-bad fixture: batched commit-path handlers without demux.

Scanned as a ``src/repro/cluster/...`` module: ``write_shadow_many``
maps the batch through a comprehension (the first bad item raises out
of the handler and the whole RPC -- every batchmate's action -- fails
with it), and ``commit_shadow_many`` has the per-item try but re-raises
from the handler, which is the same whole-batch abort wearing a
seatbelt.  Both are exactly what the batch-demux rule exists to refuse.
"""


class NaiveBatchStore:
    def write_shadow(self, uid_text, buffer, version):
        return True

    def commit_shadow(self, uid_text):
        return True

    def write_shadow_many(self, items):
        # One refused item aborts the whole batch.
        return [("ok", self.write_shadow(*item)) for item in items]

    def commit_shadow_many(self, items):
        outcomes = []
        for item in items:
            try:
                (uid_text,) = item
                outcomes.append(("ok", self.commit_shadow(uid_text)))
            except Exception:
                raise  # poisons every batchmate
        return outcomes
