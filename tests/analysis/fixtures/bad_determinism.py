"""Known-bad fixture: ambient wall clock and RNG inside the simulation.

Every banned source in one file: ``time.*`` clocks, ``random.*``
draws, ``datetime``/``date`` "now" constructors, and from-imports that
pull the same names in under bare names.  The determinism rule must
flag each one.
"""

import random
import time
from datetime import datetime
from random import randint
from time import monotonic


def jittered_deadline(base):
    started = time.time()
    stamp = datetime.now()
    jitter = random.uniform(0.0, 0.1)
    retry_at = monotonic() + randint(1, 5)
    return base + jitter, started, stamp, retry_at
