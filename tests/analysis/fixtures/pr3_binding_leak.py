"""Known-bad fixture: PR 3's binding-scheme leak, distilled.

The figure-7 scheme's private top-level database action was aborted
only under ``except Exception`` -- correct for RPC failures, but a
non-``Exception`` failure (a killed client process, KeyboardInterrupt)
skipped the handler and leaked the action's write locks on every
replica it had already reached.  The action-leak rule must flag the
narrow handler (ident ``first:narrow-abort``).
"""


def bind_with_use_lists(db, client_node, uid, binder, tracer):
    first = AtomicAction(node=client_node, tracer=tracer)
    try:
        snapshot = yield from db.get_server_with_uses(first, uid,
                                                      for_update=True)
        bound = yield from attempt_binds(first, uid, binder, snapshot.hosts)
        yield from db.increment(first, client_node, uid, bound)
    except Exception:
        # Too narrow: a BaseException-only failure leaks ``first``.
        yield from first.abort()
        raise
    yield from first.commit()
    return bound
