"""Known-bad fixture: PR 1's cleanup-daemon bypass, distilled.

The original janitor purged a dead client's naming-db entries with a
top-level action but never terminated it when ``purge_client`` raised:
the action's write locks on the entry stayed held until another cleaner
happened to purge the *cleaner* as dead.  The action-leak rule must
flag the unguarded region (ident ``action:unguarded``).
"""


def purge_dead_client(db, node_name, client, tracer):
    action = AtomicAction(node=node_name, tracer=tracer)
    # No try/finally, no handler: any raise below abandons ``action``.
    yield from db.add_record(action)
    purged = yield from db.purge_client(action, client)
    yield from action.commit()
    return purged
