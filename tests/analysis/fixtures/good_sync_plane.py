"""Known-good fixture: maintenance traffic on the sync plane.

Scanned as one of the maintenance modules: every wire hop rides the
dedicated ``sync_rpc`` agent and clients come from ``sync_client_for``,
so the sync-plane rule reports nothing.
"""


class RepairWorker:
    def __init__(self, node, router):
        self.node = node
        self.router = router

    def copy_entry(self, peer, key):
        entry = yield self.node.sync_rpc.call(peer, "group_view_db_sync",
                                              "get", key)
        db = self.router.sync_client_for(key)
        return entry, db
