"""Known-bad fixture: PR 4's dropped resync fence, distilled.

``ShardResyncManager`` re-registered the client-facing
``group_view_db`` service after convergence but forgot ``fence=``, so
a recovered host answered stale-ring clients unchecked.  The
fence-required rule must flag both the missing ``fence=`` (ident
``group_view_db:missing-fence``) and an explicit ``fence=None``
(ident ``group_view_db:fence-none``).
"""

SERVICE = "group_view_db"


class ResyncManager:
    def __init__(self, node, db):
        self.node = node
        self.db = db

    def reopen_after_convergence(self):
        # Dropped fence: stale-ring clients are accepted unchecked.
        self.node.rpc.register(SERVICE, self.db)

    def reopen_disarmed(self):
        # fence=None explicitly disarms the epoch check.
        self.node.rpc.register("group_view_db", self.db, fence=None)
