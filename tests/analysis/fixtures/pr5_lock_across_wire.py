"""Known-bad fixture: PR 5's release-mismatch / lock-over-wire leak.

The versioned-read path try-locks both database halves for a probe and
must release them inside the same dispatch.  Here the probe yields an
RPC to a peer while still holding the try-locks: the hold time is now
unbounded (a crashed peer turns it into a leak).  The lock-across-wire
rule must flag the suspension (ident ending ``:across-wire``).
"""


def read_with_peer_check(locks, rpc, probe, key, peer):
    locks.try_lock(probe.id, key, WRITE)
    # Lock held across the wire: the process parks on the network
    # while every other reader of ``key`` is refused.
    remote_version = yield rpc.call(peer, "store", "version_of", key)
    locks.release_all(probe.id)
    return remote_version
