"""Known-bad fixture: backoff retry sleeps without seeded jitter.

Two shapes of the bug.  ``lockstep_retry`` sleeps a bare exponential
backoff: every client that lost the same race re-collides on the exact
same tick, forever, because a discrete-event simulator has no ambient
noise to break the tie.  ``ambient_retry`` jitters -- but from
``random.*``, which breaks seeded replay.  The seeded-backoff rule must
flag both (the second is also a determinism finding; the rules are
checked independently).
"""

import random

from repro.sim.process import Timeout


class FlakyCaller:

    backoff = 0.05

    def lockstep_retry(self, rpc):
        for attempt in range(3):
            try:
                return (yield from rpc.call("db", "svc", "prepare"))
            except ConnectionError:
                yield Timeout(self.backoff * 2 ** attempt)
        return None

    def ambient_retry(self, rpc, backoff=0.05):
        for attempt in range(3):
            delay = backoff * 2 ** attempt
            try:
                return (yield from rpc.call("db", "svc", "prepare"))
            except ConnectionError:
                yield Timeout(delay + random.uniform(0.0, delay))
        return None
