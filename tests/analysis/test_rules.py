"""The eight checkers against the regression-fixture corpus.

One known-bad fixture per historical bug (PRs 1-10) proves each rule
still catches the mistake it was written for; the known-good fixtures
prove the approved patterns, suppressions, and nested actions do not
false-positive.
"""


def idents(report, rule=None):
    return {f.ident for f in report.findings
            if rule is None or f.rule == rule}


# -- known-bad: one fixture per historical bug -------------------------------


def test_pr1_cleanup_bypass_is_flagged(scan_fixture):
    report = scan_fixture("pr1_cleanup_bypass.py", rules=["action-leak"])
    assert idents(report) == {"action:unguarded"}
    (finding,) = report.findings
    assert finding.symbol == "purge_dead_client"
    assert "no abort on the exception path" in finding.message


def test_pr2_include_guard_leak_is_flagged(scan_fixture):
    report = scan_fixture("pr2_include_guard.py", rules=["action-leak"])
    assert idents(report) == {"action:unguarded"}
    (finding,) = report.findings
    assert finding.symbol == "include_guard"


def test_pr3_binding_narrow_abort_is_flagged(scan_fixture):
    report = scan_fixture("pr3_binding_leak.py", rules=["action-leak"])
    assert idents(report) == {"first:narrow-abort"}
    (finding,) = report.findings
    assert "except Exception" in finding.message


def test_pr4_dropped_fence_is_flagged(scan_fixture):
    report = scan_fixture("pr4_dropped_fence.py", rules=["fence-required"])
    assert idents(report) == {"group_view_db:missing-fence",
                              "group_view_db:fence-none"}


def test_pr5_lock_across_wire_is_flagged(scan_fixture):
    report = scan_fixture("pr5_lock_across_wire.py",
                          rules=["lock-across-wire"])
    assert idents(report) == {"locks.try_lock:across-wire"}


def test_client_plane_in_maintenance_module_is_flagged(scan_fixture):
    report = scan_fixture("bad_sync_plane.py",
                          relpath="src/repro/naming/read_repair.py",
                          rules=["sync-plane"])
    assert {f.ident for f in report.findings} == {
        "self.node.rpc:client-plane-call",
        "client_for:client-plane-client",
    }


def test_coherence_on_the_client_plane_is_flagged(scan_fixture):
    report = scan_fixture("bad_coherence_push.py",
                          relpath="src/repro/naming/coherence.py",
                          rules=["coherence-push"])
    assert {f.ident for f in report.findings} == {
        "self.node.rpc:client-plane-register",
        "self._mcast:client-plane-push",
        "self.node.rpc:client-plane-call",
    }


def test_batch_demux_flags_whole_batch_handlers(scan_fixture):
    report = scan_fixture("bad_batch_demux.py",
                          relpath="src/repro/cluster/store_host.py",
                          rules=["batch-demux"])
    assert {f.ident for f in report.findings} == {
        "write_shadow_many:no-item-guard",
        "commit_shadow_many:handler-reraises",
    }


def test_batch_demux_accepts_per_item_outcomes(scan_fixture):
    report = scan_fixture("good_batch_demux.py",
                          relpath="src/repro/cluster/store_host.py",
                          rules=["batch-demux"])
    assert report.findings == []


def test_unjittered_and_ambient_backoff_are_flagged(scan_fixture):
    report = scan_fixture("bad_seeded_backoff.py", rules=["seeded-backoff"])
    assert idents(report) == {"self.backoff:unjittered",
                              "delay:ambient-jitter"}
    messages = {f.ident: f.message for f in report.findings}
    assert "lockstep" in messages["self.backoff:unjittered"]
    assert "seeded replay" in messages["delay:ambient-jitter"]


def test_seeded_backoff_patterns_are_silent(scan_fixture):
    report = scan_fixture("good_seeded_backoff.py", rules=["seeded-backoff"])
    assert report.findings == []


def test_determinism_catches_every_banned_source(scan_fixture):
    report = scan_fixture("bad_determinism.py", rules=["determinism"])
    assert idents(report) >= {
        "time.time",
        "random.uniform",
        "datetime.now",
        "import:random.randint",
        "import:time.monotonic",
    }


# -- known-good: approved patterns must stay silent --------------------------


def test_good_patterns_produce_no_findings(scan_fixture):
    report = scan_fixture("good_patterns.py")
    assert report.findings == []
    assert report.suppressed == []


def test_sync_plane_correct_usage_is_silent(scan_fixture):
    report = scan_fixture("good_sync_plane.py",
                          relpath="src/repro/naming/read_repair.py",
                          rules=["sync-plane"])
    assert report.findings == []


def test_coherence_on_the_sync_plane_is_silent(scan_fixture):
    report = scan_fixture("good_coherence_push.py",
                          relpath="src/repro/naming/coherence.py",
                          rules=["coherence-push"])
    assert report.findings == []


def test_coherence_rule_ignores_other_modules(scan_fixture):
    report = scan_fixture("bad_coherence_push.py",
                          relpath="src/repro/naming/other_module.py",
                          rules=["coherence-push"])
    assert report.findings == []
    assert report.files_scanned == 0


def test_maintenance_rule_ignores_other_modules(scan_fixture):
    # The same bad file outside the maintenance modules is out of scope.
    report = scan_fixture("bad_sync_plane.py",
                          relpath="src/repro/cluster/client_helper.py",
                          rules=["sync-plane"])
    assert report.findings == []
    assert report.files_scanned == 0  # no applicable rule -> not scanned


def test_suppressions_move_findings_to_suppressed(scan_fixture):
    report = scan_fixture("good_suppressions.py")
    assert report.findings == []
    assert {f.rule for f in report.suppressed} == {"determinism",
                                                   "lock-across-wire"}


def test_determinism_exempts_rng_module(scan_fixture):
    report = scan_fixture("bad_determinism.py",
                          relpath="src/repro/sim/rng.py",
                          rules=["determinism"])
    assert report.findings == []
