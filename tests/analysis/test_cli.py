"""``python -m repro.analysis`` end to end: exit codes and outputs.

The CLI is exercised in-process through ``main(argv)`` (same code path
as the module entry, without subprocess overhead).
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def tree(tmp_path):
    """A scan root holding one dirty and one clean module."""
    def build(*fixture_names, relpaths=None):
        names = list(fixture_names)
        relpaths = relpaths or [f"src/repro/naming/mod{i}.py"
                                for i in range(len(names))]
        for name, relpath in zip(names, relpaths):
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copy(FIXTURES / name, target)
        return tmp_path
    return build


def test_clean_tree_exits_zero(tree, capsys):
    root = tree("good_patterns.py")
    assert main(["--root", str(root), "--strict"]) == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_strict_exits_one_on_findings(tree, capsys):
    root = tree("pr1_cleanup_bypass.py")
    assert main(["--root", str(root), "--strict"]) == 1
    assert "[action-leak]" in capsys.readouterr().out


def test_findings_without_strict_exit_zero(tree):
    root = tree("pr1_cleanup_bypass.py")
    assert main(["--root", str(root)]) == 0


def test_unknown_rule_is_usage_error(tree, capsys):
    root = tree("good_patterns.py")
    assert main(["--root", str(root), "--rules", "bogus"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_bad_baseline_is_usage_error(tree, capsys):
    root = tree("good_patterns.py")
    (root / "analysis-baseline.json").write_text("{not json")
    assert main(["--root", str(root), "--strict"]) == 2
    assert "bad baseline" in capsys.readouterr().err


def test_parse_error_exits_one_even_without_strict(tmp_path, capsys):
    bad = tmp_path / "src/repro/broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n")
    assert main(["--root", str(tmp_path)]) == 1
    assert "parse error" in capsys.readouterr().out


def test_write_baseline_then_strict_passes(tree, capsys):
    root = tree("pr1_cleanup_bypass.py")
    assert main(["--root", str(root), "--strict"]) == 1
    assert main(["--root", str(root), "--write-baseline"]) == 0
    out = capsys.readouterr().out
    assert "baseline written" in out
    # The grandfathered finding no longer fails strict mode...
    assert main(["--root", str(root), "--strict"]) == 0
    # ...but a fresh violation still does.
    shutil.copy(FIXTURES / "pr5_lock_across_wire.py",
                root / "src/repro/naming/mod_new.py")
    assert main(["--root", str(root), "--strict"]) == 1


def test_json_output_and_artifact(tree, capsys, tmp_path):
    root = tree("pr4_dropped_fence.py")
    out_file = tmp_path / "report.json"
    assert main(["--root", str(root), "--json",
                 "--json-out", str(out_file)]) == 0
    stdout_data = json.loads(capsys.readouterr().out)
    file_data = json.loads(out_file.read_text())
    assert stdout_data == file_data
    assert stdout_data["schema_version"] == 1
    assert stdout_data["stats"]["new"] == 2


def test_stats_output(tree, capsys):
    root = tree("bad_determinism.py")
    assert main(["--root", str(root), "--stats"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("files scanned: 1")
    assert "determinism:" in out


def test_explicit_paths_limit_the_scan(tree, capsys):
    root = tree("pr1_cleanup_bypass.py", "good_patterns.py",
                relpaths=["src/repro/naming/dirty.py",
                          "src/repro/naming/clean.py"])
    assert main(["--root", str(root), "--strict",
                 "src/repro/naming/clean.py"]) == 0
    assert main(["--root", str(root), "--strict",
                 "src/repro/naming/dirty.py"]) == 1
