"""The linter framework: registry, suppressions, baseline, JSON schema."""

import json

import pytest

from repro.analysis import (
    Finding,
    ModuleSource,
    Rule,
    all_rules,
    analyze_paths,
    get_rules,
    load_baseline,
    register,
    render_stats,
    render_text,
    write_baseline,
)
from repro.analysis.core import _REGISTRY

EXPECTED_RULES = {"action-leak", "lock-across-wire", "fence-required",
                  "sync-plane", "coherence-push", "batch-demux",
                  "determinism", "seeded-backoff"}


# -- registry ----------------------------------------------------------------


def test_builtin_rules_are_registered():
    assert set(all_rules()) == EXPECTED_RULES


def test_get_rules_subset_preserves_request_order():
    rules = get_rules(["determinism", "action-leak"])
    assert [r.name for r in rules] == ["determinism", "action-leak"]


def test_get_rules_unknown_name_raises():
    with pytest.raises(KeyError, match="no-such-rule"):
        get_rules(["no-such-rule"])


def test_duplicate_registration_raises():
    with pytest.raises(ValueError, match="duplicate"):
        @register
        class Clone(Rule):
            name = "determinism"


def test_register_and_unregister_custom_rule():
    @register
    class Custom(Rule):
        name = "custom-test-rule"

        def check(self, module):
            return []

    try:
        assert "custom-test-rule" in all_rules()
    finally:
        del _REGISTRY["custom-test-rule"]


# -- suppressions ------------------------------------------------------------


def make_module(tmp_path, text, relpath="src/repro/mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return ModuleSource.from_path(path, relpath)


def test_suppression_matches_only_named_rules(tmp_path):
    module = make_module(tmp_path, "x = 1  # repro: ignore[action-leak, determinism]\n")
    assert module.suppressed(1, "action-leak")
    assert module.suppressed(1, "determinism")
    assert not module.suppressed(1, "fence-required")


def test_suppression_is_line_scoped(tmp_path):
    module = make_module(tmp_path, "x = 1  # repro: ignore[determinism]\ny = 2\n")
    assert module.suppressed(1, "determinism")
    assert not module.suppressed(2, "determinism")


def test_wildcard_suppression_silences_every_rule(tmp_path):
    module = make_module(tmp_path, "x = 1  # repro: ignore[*]\n")
    assert module.suppressed(1, "action-leak")
    assert module.suppressed(1, "anything-at-all")


def test_unrelated_comments_are_not_suppressions(tmp_path):
    module = make_module(tmp_path, "x = 1  # ignore[determinism] (not ours)\n")
    assert not module.suppressed(1, "determinism")


# -- baseline ----------------------------------------------------------------


def test_finding_key_is_line_free():
    a = Finding(rule="r", path="p.py", line=10, symbol="f",
                message="m", ident="var:unguarded")
    b = Finding(rule="r", path="p.py", line=99, symbol="f",
                message="other", ident="var:unguarded")
    assert a.key() == b.key()  # survives line drift from unrelated edits


def test_baseline_roundtrip_grandfathers_findings(tmp_path, scan_fixture):
    report = scan_fixture("pr1_cleanup_bypass.py", rules=["action-leak"])
    assert report.new_findings
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, report)

    keys = load_baseline(baseline)
    assert keys == {f.key() for f in report.findings}

    again = scan_fixture("pr1_cleanup_bypass.py", rules=["action-leak"],
                         baseline_keys=keys)
    assert again.findings  # still detected...
    assert again.new_findings == []  # ...but grandfathered
    assert again.baselined_findings == again.findings


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == frozenset()


def test_baseline_version_mismatch_raises(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(bad)


# -- report / JSON schema -----------------------------------------------------


def test_json_report_schema(scan_fixture):
    report = scan_fixture("pr4_dropped_fence.py", rules=["fence-required"])
    data = report.to_dict()
    assert data["schema_version"] == 1
    assert data["rules"] == ["fence-required"]
    assert data["files_scanned"] == 1
    assert data["parse_errors"] == []
    assert data["stats"]["total"] == 2
    assert data["stats"]["new"] == 2
    assert data["stats"]["by_rule"] == {"fence-required": 2}
    for entry in data["findings"]:
        assert set(entry) == {"rule", "path", "line", "symbol", "message",
                              "key"}
        assert entry["rule"] == "fence-required"


def test_parse_errors_are_reported_not_fatal(tmp_path):
    bad = tmp_path / "src/repro/broken.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n")
    report = analyze_paths(tmp_path, ["src/repro"])
    assert len(report.parse_errors) == 1
    assert "broken.py" in report.parse_errors[0]


def test_render_text_and_stats_summarize(scan_fixture):
    report = scan_fixture("pr5_lock_across_wire.py",
                          rules=["lock-across-wire"])
    text = render_text(report)
    assert "[lock-across-wire]" in text
    assert "1 new finding(s)" in text
    stats = render_stats(report)
    assert "lock-across-wire: 1" in stats
    assert "files scanned: 1" in stats
