#!/usr/bin/env python
"""The three binding schemes side by side (figures 6-8).

A server node is crashed once; then a series of clients bind to the
object.  Under the **standard** scheme (figure 6) the Sv set is static,
so *every* client wastes a bind attempt on the dead server -- the paper
calls this discovering the failure "the hard way".  Under the
**independent** and **nested top-level** schemes (figures 7-8) the
first client to hit the dead server Removes it, and later clients never
try it -- at the cost of write locks on the naming database during
binding.

Run:  python examples/binding_schemes_demo.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro import DistributedSystem, SingleCopyPassive, SystemConfig
from repro.workload import Table

from examples.quickstart import Counter


def run_scheme(scheme_name, clients=6, seed=5):
    system = DistributedSystem(SystemConfig(seed=seed,
                                            binding_scheme=scheme_name))
    system.registry.register(Counter)
    for host in ("s1", "s2", "s3"):
        system.add_node(host, server=True)
    system.add_node("t1", store=True)
    runtimes = [system.add_client(f"c{i}") for i in range(clients)]
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=["s1", "s2", "s3"], st_hosts=["t1"])

    system.nodes["s1"].crash()  # the first Sv entry is dead

    committed = 0
    for runtime in runtimes:
        def work(txn):
            return (yield from txn.invoke(uid, "add", 1))
        result = system.run_transaction(runtime, work)
        committed += int(result.committed)

    failed_attempts = system.metrics.counter_value(
        f"binding.{system.clients['c0'].scheme.name}.failed_attempts")
    write_locks = (
        system.db.metrics.counter_value("server_db.locks.write")
        + system.db.metrics.counter_value("server_db.locks.exclude_write"))
    sv_now = system.db_sv(uid)
    return {
        "committed": committed,
        "failed_bind_attempts": failed_attempts,
        "db_write_locks": write_locks,
        "sv_after": ",".join(sv_now),
    }


def main():
    table = Table("Binding schemes after one server crash (6 clients)",
                  ["scheme", "figure", "committed", "wasted binds",
                   "db write locks", "Sv afterwards"])
    for scheme, figure in (("standard", "fig 6"),
                           ("independent", "fig 7"),
                           ("nested_top_level", "fig 8")):
        row = run_scheme(scheme)
        table.add_row(scheme, figure, row["committed"],
                      row["failed_bind_attempts"], row["db_write_locks"],
                      row["sv_after"])
    table.show()
    print("\nstandard: every client re-pays the dead-server probe; "
          "use-list schemes pay once, then Remove it from Sv.")


if __name__ == "__main__":
    main()
