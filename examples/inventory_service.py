#!/usr/bin/env python
"""An inventory service on coordinator-cohort replication.

A warehouse inventory object processed by a coordinator with two
standby cohorts, bound through the figure-7 use-list scheme with the
cleanup daemon running.  The demo walks through:

1. reservations flowing through the coordinator (cohorts idle);
2. a coordinator crash between transactions -- the next transaction
   fails over to a cohort without data loss (commit-time checkpoints);
3. a client crash leaving orphaned use-list counters, repaired by the
   cleanup daemon;
4. conservation: reserved + available never changes.

Run:  python examples/inventory_service.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro import (
    CoordinatorCohortReplication,
    DistributedSystem,
    LockMode,
    PersistentObject,
    SystemConfig,
    operation,
)


class Inventory(PersistentObject):
    TYPE_NAME = "examples.Inventory"

    def __init__(self, uid, available=0, reserved=0):
        super().__init__(uid)
        self.available = available
        self.reserved = reserved

    def save_state(self, out):
        out.pack_int(self.available)
        out.pack_int(self.reserved)

    def restore_state(self, state):
        self.available = state.unpack_int()
        self.reserved = state.unpack_int()

    @operation(LockMode.READ)
    def stock(self):
        return {"available": self.available, "reserved": self.reserved}

    @operation(LockMode.WRITE)
    def reserve(self, quantity):
        if quantity > self.available:
            raise ValueError(f"only {self.available} available")
        self.available -= quantity
        self.reserved += quantity
        return self.reserved

    @operation(LockMode.WRITE)
    def release(self, quantity):
        quantity = min(quantity, self.reserved)
        self.reserved -= quantity
        self.available += quantity
        return self.available


def main():
    system = DistributedSystem(SystemConfig(
        seed=99, binding_scheme="independent",
        enable_cleaner=True, cleaner_interval=2.0))
    system.registry.register(Inventory)
    for name in ("w1", "w2", "w3"):
        system.add_node(name, server=True)
    for name in ("d1", "d2"):
        system.add_node(name, store=True)
    clerk = system.add_client("clerk", policy=CoordinatorCohortReplication())
    uid = system.create_object(
        Inventory(system.new_uid(), available=100),
        sv_hosts=["w1", "w2", "w3"], st_hosts=["d1", "d2"])

    def reserve(quantity):
        def work(txn):
            return (yield from txn.invoke(uid, "reserve", quantity))
        return work

    def read_stock(txn):
        return (yield from txn.invoke(uid, "stock"))

    # 1. Normal reservations through the coordinator (w1).
    for quantity in (10, 15):
        result = system.run_transaction(clerk, reserve(quantity))
        print(f"reserve {quantity}: committed={result.committed} "
              f"(total reserved {result.value})")
    w1_host = system.nodes["w1"].rpc.service("servers")
    w2_host = system.nodes["w2"].rpc.service("servers")
    print(f"invocations: w1={w1_host._server(str(uid)).invocations} "
          f"(coordinator), w2={w2_host._server(str(uid)).invocations} (cohort)")

    # 2. Coordinator crashes between transactions: cohort takes over.
    print("\ncrashing the coordinator node w1 ...")
    system.nodes["w1"].crash()
    result = system.run_transaction(clerk, reserve(5))
    print(f"reserve 5 after coordinator crash: committed={result.committed}")
    stock = system.run_transaction(clerk, read_stock, read_only=True)
    print(f"stock (served by a promoted cohort): {stock.value}")

    # 3. A second clerk crashes mid-transaction; the daemon cleans up.
    clumsy = system.add_client("clumsy", policy=CoordinatorCohortReplication())

    def crashy(txn):
        yield from txn.invoke(uid, "reserve", 1)
        system.nodes["clumsy"].crash()
        yield from txn.invoke(uid, "reserve", 1)

    clumsy.transaction(crashy)
    system.run(until=system.scheduler.now + 1.0)
    snapshot = system.db.get_server_with_uses((0,), str(uid))
    system._release_probe_locks()
    orphans = sum(sum(c.values()) for c in snapshot.uses.values())
    print(f"\norphaned use-list counters after clumsy's crash: {orphans}")
    system.run(until=system.scheduler.now + 10.0)
    snapshot = system.db.get_server_with_uses((0,), str(uid))
    system._release_probe_locks()
    orphans = sum(sum(c.values()) for c in snapshot.uses.values())
    print(f"after the cleanup daemon's round:                 {orphans}")

    # 4. Conservation.
    stock = system.run_transaction(clerk, read_stock, read_only=True)
    total = stock.value["available"] + stock.value["reserved"]
    print(f"\nfinal stock: {stock.value} (total {total})")
    assert total == 100, "inventory leaked!"
    print("conservation holds: available + reserved == 100")


if __name__ == "__main__":
    main()
