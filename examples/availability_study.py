#!/usr/bin/env python
"""Availability versus degree of replication (figures 2-5 in miniature).

Sweeps the four paper configurations -- |Sv| x |St| in {1,3} x {1,3} --
under an identical stochastic crash/repair workload and reports the
fraction of offered transactions that committed.  Shows the paper's
qualitative claim: replicating servers masks server crashes,
replicating state masks store crashes, and the general case (figure 5)
combines both.

Run:  python examples/availability_study.py
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro import DistributedSystem, SingleCopyPassive, SystemConfig
from repro.sim.rng import SeededRng
from repro.workload import Table, TransactionStream, run_streams

from examples.quickstart import Counter


def run_configuration(n_servers, n_stores, seed=7, txns=150):
    system = DistributedSystem(SystemConfig(seed=seed))
    system.registry.register(Counter)
    sv = [f"s{i}" for i in range(1, n_servers + 1)]
    st = [f"t{i}" for i in range(1, n_stores + 1)]
    for host in sv:
        system.add_node(host, server=True)
    for host in st:
        system.add_node(host, store=True)
    client = system.add_client("c1", policy=SingleCopyPassive())
    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=sv, st_hosts=st)

    # Crash each server/store node with MTTF 40, repair after ~8.
    system.stochastic_faults(sv + st, mttf=40.0, mttr=8.0, stop_after=900.0)

    def work_factory(_index):
        def work(txn):
            return (yield from txn.invoke(uid, "add", 1))
        return work

    stream = TransactionStream(client, work_factory, count=txns,
                               rng=SeededRng(seed, "stream"),
                               mean_think_time=1.0, max_attempts=1)
    report = run_streams(system, [stream])
    return report


def main():
    table = Table("Availability vs replication degree "
                  "(commit rate under identical churn)",
                  ["|Sv|", "|St|", "figure", "commit rate", "aborted"])
    figures = {(1, 1): "fig 2", (1, 3): "fig 3", (3, 1): "fig 4",
               (3, 3): "fig 5"}
    results = {}
    for n_servers in (1, 3):
        for n_stores in (1, 3):
            report = run_configuration(n_servers, n_stores)
            results[(n_servers, n_stores)] = report.commit_rate
            table.add_row(n_servers, n_stores,
                          figures[(n_servers, n_stores)],
                          report.commit_rate, report.aborted)
    table.show()

    assert results[(3, 3)] >= results[(1, 1)], \
        "replication should not hurt availability"
    print("\nshape check: the general case (fig 5) beats the "
          "non-replicated one (fig 2) under churn")


if __name__ == "__main__":
    main()
