#!/usr/bin/env python
"""Quickstart: a replicated persistent object surviving a store crash.

Walks the full lifecycle the paper describes:

1. define a persistent class and register it;
2. build a small cluster (2 server nodes, 2 store nodes, a client);
3. create a replicated object (Sv = {s1, s2}, St = {t1, t2});
4. run transactions against it;
5. crash a store node mid-run -- the commit *Excludes* it from St;
6. recover the node -- the recovery protocol refreshes its state and
   *Includes* it back.

Run:  python examples/quickstart.py
"""

from repro import (
    DistributedSystem,
    LockMode,
    PersistentObject,
    SingleCopyPassive,
    SystemConfig,
    operation,
)


class Counter(PersistentObject):
    """The smallest useful persistent object."""

    TYPE_NAME = "examples.Counter"

    def __init__(self, uid, value=0):
        super().__init__(uid)
        self.value = value

    def save_state(self, out):
        out.pack_int(self.value)

    def restore_state(self, state):
        self.value = state.unpack_int()

    @operation(LockMode.READ)
    def get(self):
        return self.value

    @operation(LockMode.WRITE)
    def add(self, amount):
        self.value += amount
        return self.value


def main():
    system = DistributedSystem(SystemConfig(seed=42))
    system.registry.register(Counter)

    for name in ("s1", "s2"):
        system.add_node(name, server=True)
    for name in ("t1", "t2"):
        system.add_node(name, store=True)
    client = system.add_client("c1", policy=SingleCopyPassive())

    uid = system.create_object(Counter(system.new_uid(), value=0),
                               sv_hosts=["s1", "s2"], st_hosts=["t1", "t2"])
    print(f"created object {uid}:  Sv={system.db_sv(uid)}  St={system.db_st(uid)}")

    def increment(txn):
        return (yield from txn.invoke(uid, "add", 1))

    result = system.run_transaction(client, increment)
    print(f"txn 1 committed={result.committed} value={result.value} "
          f"store versions={system.store_versions(uid)}")

    print("\ncrashing store node t2 ...")
    system.nodes["t2"].crash()
    result = system.run_transaction(client, increment)
    print(f"txn 2 committed={result.committed} value={result.value}")
    print(f"the commit Excluded t2:       St={system.db_st(uid)}")
    print(f"store versions now:           {system.store_versions(uid)}")

    print("\nrecovering t2 ...")
    system.nodes["t2"].recover()
    system.run(until=system.scheduler.now + 10)
    print(f"recovery refreshed + Included: St={sorted(system.db_st(uid))}")
    print(f"store versions now:           {system.store_versions(uid)}")

    result = system.run_transaction(client, increment)
    print(f"\ntxn 3 committed={result.committed} value={result.value} "
          f"store versions={system.store_versions(uid)}")
    assert result.value == 3
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
