#!/usr/bin/env python
"""Replicated bank accounts: multi-object transactions under failures.

The classic motivating workload for atomic actions: transfers between
accounts must move money exactly-once even when servers crash mid
transfer.  Accounts are replicated with **active replication** so a
replica crash during a transfer is masked rather than aborting it; a
coordinator-style crash of every replica aborts the transfer cleanly
(no money created or destroyed).

Run:  python examples/bank_accounts.py
"""

from repro import (
    ActiveReplication,
    DistributedSystem,
    LockMode,
    PersistentObject,
    SystemConfig,
    TxnAborted,
    operation,
)


class Account(PersistentObject):
    TYPE_NAME = "examples.Account"

    def __init__(self, uid, owner="", balance=0):
        super().__init__(uid)
        self.owner = owner
        self.balance = balance

    def save_state(self, out):
        out.pack_string(self.owner)
        out.pack_int(self.balance)

    def restore_state(self, state):
        self.owner = state.unpack_string()
        self.balance = state.unpack_int()

    @operation(LockMode.READ)
    def get_balance(self):
        return self.balance

    @operation(LockMode.WRITE)
    def deposit(self, amount):
        self.balance += amount
        return self.balance

    @operation(LockMode.WRITE)
    def withdraw(self, amount):
        if amount > self.balance:
            raise ValueError(f"insufficient funds: {self.balance} < {amount}")
        self.balance -= amount
        return self.balance


def make_transfer(source, target, amount):
    def transfer(txn):
        yield from txn.invoke(source, "withdraw", amount)
        yield from txn.invoke(target, "deposit", amount)
        return amount
    return transfer


def total_balance(system, client, uids):
    def read_all(txn):
        total = 0
        for uid in uids:
            total += yield from txn.invoke(uid, "get_balance")
        return total
    result = system.run_transaction(client, read_all, read_only=True)
    assert result.committed
    return result.value


def main():
    system = DistributedSystem(SystemConfig(seed=2024))
    system.registry.register(Account)
    for name in ("bank1", "bank2", "bank3"):
        system.add_node(name, server=True)
    for name in ("vault1", "vault2"):
        system.add_node(name, store=True)
    client = system.add_client("teller", policy=ActiveReplication())

    alice = system.create_object(
        Account(system.new_uid(), owner="alice", balance=1000),
        sv_hosts=["bank1", "bank2", "bank3"], st_hosts=["vault1", "vault2"])
    bob = system.create_object(
        Account(system.new_uid(), owner="bob", balance=200),
        sv_hosts=["bank1", "bank2", "bank3"], st_hosts=["vault1", "vault2"])

    print(f"initial total: {total_balance(system, client, [alice, bob])}")

    # 1. A normal transfer.
    result = system.run_transaction(client, make_transfer(alice, bob, 300))
    print(f"transfer 300 alice->bob: committed={result.committed}")

    # 2. A replica crashes mid-transfer: masked by active replication.
    def crashy_transfer(txn):
        yield from txn.invoke(alice, "withdraw", 100)
        system.nodes["bank2"].crash()   # one replica dies
        yield from txn.invoke(bob, "deposit", 100)
        return 100

    result = system.run_transaction(client, crashy_transfer)
    print(f"transfer with replica crash: committed={result.committed} "
          f"(bank2 failure masked)")

    # 3. An overdraft aborts at the application level.
    result = system.run_transaction(client, make_transfer(bob, alice, 10_000))
    print(f"overdraft transfer: committed={result.committed} "
          f"reason={result.reason}")

    # 4. Money is conserved through all of it.
    total = total_balance(system, client, [alice, bob])
    print(f"final total: {total}")
    assert total == 1200, "money was created or destroyed!"
    print("invariant holds: no money created or destroyed")

    balances = {}
    def read(uid):
        def body(txn):
            return (yield from txn.invoke(uid, "get_balance"))
        return body
    for name, uid in (("alice", alice), ("bob", bob)):
        balances[name] = system.run_transaction(client, read(uid)).value
    print(f"final balances: {balances}")


if __name__ == "__main__":
    main()
